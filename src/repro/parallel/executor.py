"""Backend-pluggable task execution with seeded RNG fan-out.

Every parallelisable stage in this package (Gibbs restarts, collapsed
cross-check chains, skip-gram epoch shards, benchmark repetitions) has
the same shape: N independent tasks, each needing its own reproducible
random stream, whose results are consumed in task order. This module
provides that shape once, behind three interchangeable backends:

* ``serial``  — a plain loop in the calling process (the default, and
  the reference semantics every other backend must reproduce);
* ``thread``  — a :class:`~concurrent.futures.ThreadPoolExecutor`; wins
  when tasks release the GIL (BLAS-heavy numpy) or block on I/O;
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`;
  wins for Python-heavy work such as the per-token Gibbs loops, at the
  cost of pickling the task payloads.

Determinism is backend-independent by construction: child generators are
spawned from the caller's RNG *before* dispatch via
:func:`repro.rng.spawn`, so task ``i`` sees the same stream no matter
where (or in what order) it runs, and results are always returned in
submission order. A fitted model is therefore bit-identical across
backends.

Robustness: sandboxes and restricted containers routinely lack working
``fork``/semaphore support, payloads can turn out to be unpicklable, and
a batch can exceed its ``timeout``. When ``fallback_to_serial`` is on
(the default), all three degrade to running the affected tasks serially
in the caller — same results, reduced parallelism — instead of failing
the experiment. Exceptions raised by the task body itself are *not*
swallowed by the fallback; they propagate to the caller in task order.
"""

from __future__ import annotations

import concurrent.futures
import functools
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ParallelError
from repro.obs import metrics, trace
from repro.obs.log import get_logger
from repro.rng import RngLike, spawn

logger = get_logger("repro.parallel")

#: Recognised backend names ("auto" resolves at call time).
BACKENDS = ("serial", "thread", "process", "auto")

#: A task body: ``fn(payload, rng) -> result``. For the process backend
#: it must be picklable (a module-level function or a partial of one).
TaskFn = Callable[[Any, np.random.Generator], Any]

#: Sentinel marking tasks the pool never delivered (``None`` is a valid
#: task result, so a dedicated marker is required).
_PENDING = object()


@dataclass(frozen=True)
class ParallelConfig:
    """How a batch of independent tasks should be executed.

    ``backend="auto"`` picks ``process`` on multi-core hosts and
    ``serial`` otherwise. ``timeout`` bounds the wall-clock of the whole
    batch (seconds); on expiry the unfinished tasks are recomputed
    serially (identical results — the RNG streams were fixed up front)
    rather than lost, unless ``fallback_to_serial`` is off.
    """

    backend: str = "serial"
    max_workers: int | None = None
    timeout: float | None = None
    fallback_to_serial: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ParallelError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ParallelError("max_workers must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ParallelError("timeout must be positive")

    def resolve_backend(self) -> str:
        """The concrete backend ``auto`` maps to on this host."""
        if self.backend != "auto":
            return self.backend
        return "process" if (os.cpu_count() or 1) > 1 else "serial"

    def resolve_workers(self, n_tasks: int) -> int:
        """Worker count for a batch of ``n_tasks``."""
        limit = self.max_workers or os.cpu_count() or 1
        return max(1, min(limit, n_tasks))


def run_tasks(
    fn: TaskFn,
    payloads: Sequence[Any],
    rng: RngLike = None,
    config: ParallelConfig | None = None,
) -> list[Any]:
    """Run ``fn(payload, child_rng)`` for every payload; ordered results.

    One child generator per task is spawned from ``rng`` up front, so the
    result list is a pure function of ``(fn, payloads, rng)`` regardless
    of backend. Backend failures (no multiprocessing support, pickling
    errors, timeouts) fall back to serial execution of the affected
    tasks when ``config.fallback_to_serial`` is set; otherwise they
    raise :class:`~repro.errors.ParallelError`.
    """
    config = config or ParallelConfig()
    payloads = list(payloads)
    if not payloads:
        return []
    rngs = spawn(rng, len(payloads))
    backend = config.resolve_backend()
    if backend == "serial" or len(payloads) == 1:
        with trace.span("run-tasks", backend="serial", n_tasks=len(payloads)):
            return [
                _run_timed(fn, payload, child)
                for payload, child in zip(payloads, rngs)
            ]
    with trace.span("run-tasks", backend=backend, n_tasks=len(payloads)):
        return _run_pooled(fn, payloads, rngs, backend, config)


def _observe_task(wait_s: float | None, run_s: float) -> None:
    """Feed one task's wait/run wall-clock into the executor metrics."""
    registry = metrics.registry
    if wait_s is not None:
        registry.histogram("executor.task_wait_seconds").observe(wait_s)
    registry.histogram("executor.task_run_seconds").observe(run_s)


def _run_timed(fn: TaskFn, payload: Any, rng: np.random.Generator) -> Any:
    """Run one task in the caller, feeding the run-time histogram."""
    started = time.perf_counter()
    result = fn(payload, rng)
    _observe_task(None, time.perf_counter() - started)
    return result


def _guarded(
    fn: TaskFn,
    capture_sweep_every: int | None,
    submitted_unix: float,
    payload: Any,
    rng: np.random.Generator,
) -> tuple:
    """Worker shim: capture task-body exceptions as values.

    Anything that escapes *this* function is then, by elimination, an
    infrastructure failure (pickling, broken pool, lost worker) and is
    safe to answer with a serial fallback.

    Alongside the ``("ok"|"err", value)`` outcome it ships a telemetry
    dict back to the caller: how long the task waited in the pool queue
    (wall clock since submission — the only clock processes share), how
    long its body ran, and — when ``capture_sweep_every`` is set (the
    process backend under an active trace) — the span/event records the
    task produced, for the parent to :func:`repro.obs.trace.replay`.
    The thread backend passes ``None``: its workers share the parent's
    live tracer and emit directly.
    """
    telemetry: dict[str, Any] = {
        "wait_s": max(0.0, time.time() - submitted_unix)
    }
    started = time.perf_counter()
    try:
        if capture_sweep_every is not None:
            with trace.capture(sweep_every=capture_sweep_every) as records:
                result = fn(payload, rng)
            telemetry["trace"] = records
        else:
            result = fn(payload, rng)
        telemetry["run_s"] = time.perf_counter() - started
        return ("ok", result, telemetry)
    except Exception as exc:  # noqa: BLE001 - re-raised in the caller
        telemetry["run_s"] = time.perf_counter() - started
        return ("err", exc, telemetry)


def _run_pooled(
    fn: TaskFn,
    payloads: list[Any],
    rngs: list[np.random.Generator],
    backend: str,
    config: ParallelConfig,
) -> list[Any]:
    """Dispatch to a thread/process pool with serial fallback."""
    outcomes: list[Any] = [_PENDING] * len(payloads)
    capture_every = (
        trace.sweep_interval()
        if backend == "process" and trace.is_enabled()
        else None
    )
    body = functools.partial(_guarded, fn, capture_every, time.time())
    workers = config.resolve_workers(len(payloads))
    pool: concurrent.futures.Executor | None
    try:
        if backend == "thread":
            pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        else:
            # The spawn start method: fork-based workers inherit whatever
            # locks the parent's threads held at fork time (pytest
            # capture, logging, BLAS pools…) and can deadlock; spawned
            # workers start clean. Tasks must be picklable either way.
            import multiprocessing

            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
    except (OSError, ImportError, ValueError) as exc:
        _backend_failure(config, f"cannot start {backend} pool: {exc!r}", exc)
        pool = None
    if pool is not None:
        try:
            futures = {
                pool.submit(body, payload, child): i
                for i, (payload, child) in enumerate(zip(payloads, rngs))
            }
            for future in concurrent.futures.as_completed(
                futures, timeout=config.timeout
            ):
                outcomes[futures[future]] = future.result()
        except (concurrent.futures.TimeoutError, TimeoutError) as exc:
            _backend_failure(
                config, f"batch timed out after {config.timeout}s", exc
            )
        except Exception as exc:  # noqa: BLE001 - task errors never get here
            # _guarded converts every task-body exception into a value,
            # so whatever reached us is infrastructure: unpicklable
            # payloads, a worker killed by the OS, a broken pool…
            _backend_failure(config, f"{backend} backend failed: {exc!r}", exc)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    # Recompute whatever the pool did not deliver. The child streams were
    # fixed before dispatch, so recomputation is bit-identical to what
    # the worker would have produced.
    results: list[Any] = []
    max_wait_s = 0.0
    for i, outcome in enumerate(outcomes):
        if outcome is _PENDING:
            results.append(_run_timed(fn, payloads[i], rngs[i]))
            continue
        status, value, telemetry = outcome
        wait_s = telemetry.get("wait_s")
        if wait_s is not None and wait_s > max_wait_s:
            max_wait_s = wait_s
        _observe_task(wait_s, telemetry.get("run_s", 0.0))
        records = telemetry.get("trace")
        if records:
            trace.replay(records)
        if status == "err":
            raise value
        results.append(value)
    # Worst queueing delay of the batch: the straggler signal the
    # adlda merge-round health view keys on (a shard that waits is a
    # round that stalls), distinct from the per-task wait histogram.
    metrics.registry.gauge("executor.batch_max_wait_seconds").set(max_wait_s)
    return results


def _backend_failure(
    config: ParallelConfig, message: str, exc: Exception
) -> None:
    """Log-and-continue or raise, per ``fallback_to_serial``."""
    if not config.fallback_to_serial:
        raise ParallelError(message) from exc
    metrics.registry.counter("executor.fallback").inc()
    trace.event("executor.fallback", reason=message)
    logger.warning("%s; falling back to serial execution", message)
