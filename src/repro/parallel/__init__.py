"""Parallel execution layer: seeded, backend-pluggable task fan-out.

See :mod:`repro.parallel.executor` for the design. Typical use::

    from repro.parallel import ParallelConfig, run_tasks

    results = run_tasks(fit_one, payloads, rng=seed,
                        config=ParallelConfig(backend="process"))
"""

from repro.parallel.executor import (
    BACKENDS,
    ParallelConfig,
    run_tasks,
)

__all__ = ["BACKENDS", "ParallelConfig", "run_tasks"]
