"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Print Table I, published vs rheometer-simulated.
``pipeline``
    Run the full pipeline and print Table II(a)/(b).
``figures``
    Run the pipeline and print the Fig 3 / Fig 4 series.
``run``
    Run the staged pipeline and print its provenance (stage
    fingerprints, cache hits, timings); ``--cache-dir`` persists and
    reuses stage artifacts across runs.
``cache``
    Inspect (``ls``, ``info``) or garbage-collect (``gc``) an on-disk
    artifact store.
``serve``
    Start the texture inference HTTP service over a fitted model from
    an artifact store (``/v1/texture``, ``/v1/terms/{term}``,
    ``/healthz``, ``/metricz``; see ``docs/serving.md``).
``estimate``
    Estimate the texture of a recipe given as ``ingredient=quantity``
    pairs, e.g. ``python -m repro estimate gelatin=5g water=300ml``.
``trace``
    Inspect a JSONL trace file written by ``--trace`` / ``$REPRO_TRACE``
    (``summary`` aggregates spans, ``tree`` renders the span forest,
    ``flame`` renders a sampling-profiler artifact as a hot-frame
    table or folded stacks).
``obs``
    Inspect observability artifacts (``series`` renders a metric
    time-series artifact written by ``--series``).
``bench``
    Bench trajectory tooling (``check`` fails on cross-run perf
    regressions: median-of-recent rows vs the committed floors).
``lint``
    Run the project static analyser (``repro.analysis``) over the tree.

Global flags: ``--log-level`` / ``-v`` configure the single ``repro``
logger; ``--trace`` on ``run`` (or ``$REPRO_TRACE`` for any command)
exports a span/event trace as JSON lines; ``--profile`` on ``run`` (or
``$REPRO_PROFILE`` for any command) writes a sampling-profiler
artifact; ``--series`` on ``run``/``serve`` writes a metric
time-series artifact.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.errors import ModelError, ReproError
from repro.obs import log as obs_log
from repro.obs import profile as obs_profile
from repro.obs import series as obs_series
from repro.obs import trace as obs_trace
from repro.pipeline.experiment import ExperimentConfig, quick_config, run_experiment

#: Default store location for ``repro cache`` (and examples):
#: ``$REPRO_CACHE_DIR``, falling back to ``.repro-cache`` in the cwd.
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Detecting Sensory Textures with Rheological "
            "Characteristics from Recipe Sharing Sites' (ICDE 2022)"
        ),
    )
    parser.add_argument(
        "--log-level",
        choices=sorted(obs_log.LEVELS),
        default=None,
        help="logging threshold for the repro logger (overrides -v)",
    )
    parser.add_argument(
        "-v", "--verbose",
        action="count",
        default=0,
        help="-v for INFO, -vv for DEBUG (default WARNING)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: published vs simulated rheology")

    pipeline = sub.add_parser("pipeline", help="full pipeline + main tables")
    pipeline.add_argument("--recipes", type=int, default=1500)
    pipeline.add_argument("--sweeps", type=int, default=300)
    pipeline.add_argument("--seed", type=int, default=11)
    pipeline.add_argument(
        "--method",
        choices=("gibbs", "collapsed", "vb"),
        default="gibbs",
        help="inference method (paper = gibbs)",
    )
    pipeline.add_argument("--restarts", type=int, default=1,
                          help="independent Gibbs chains; best one wins")
    _add_backend_flags(pipeline)
    _add_cache_flags(pipeline)

    figures = sub.add_parser("figures", help="Fig 3 and Fig 4 series")
    figures.add_argument("--recipes", type=int, default=1500)
    figures.add_argument("--sweeps", type=int, default=300)
    figures.add_argument("--seed", type=int, default=11)
    _add_backend_flags(figures)
    _add_cache_flags(figures)

    run = sub.add_parser(
        "run",
        help="run the staged pipeline and print stage provenance",
    )
    run.add_argument("--recipes", type=int, default=1500)
    run.add_argument("--sweeps", type=int, default=300)
    run.add_argument("--seed", type=int, default=11)
    run.add_argument(
        "--method",
        choices=("gibbs", "collapsed", "vb"),
        default="gibbs",
        help="inference method (paper = gibbs)",
    )
    run.add_argument(
        "--no-w2v-filter",
        action="store_true",
        help="skip the Section III-A word2vec gel-relatedness filter",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the run provenance manifest to PATH",
    )
    run.add_argument(
        "--require-cached",
        action="store_true",
        help="exit 3 unless every stage was served from the artifact "
             "store (CI cache smoke)",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="export a span/event trace of the run as JSON lines to PATH "
             f"(also enabled for any command via ${obs_trace.TRACE_ENV})",
    )
    run.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="write a wall-clock sampling-profiler artifact to PATH "
             f"(also enabled for any command via ${obs_profile.PROFILE_ENV}; "
             "render with `repro trace flame`)",
    )
    run.add_argument(
        "--series",
        metavar="PATH",
        default=None,
        help="sample the metrics registry periodically and write a "
             "time-series artifact to PATH (render with "
             "`repro obs series`)",
    )
    run.add_argument(
        "--series-interval",
        type=float,
        default=obs_series.DEFAULT_INTERVAL_S,
        metavar="SECONDS",
        help="sampling interval for --series (default: 1.0)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="split the corpus into N content-hashed shards and run the "
             "sharded out-of-core pipeline with a distributed N-shard "
             "AD-LDA fit (default: 1, or planned from --max-resident-mb)",
    )
    run.add_argument(
        "--max-resident-mb",
        type=float,
        default=None,
        metavar="MB",
        help="memory ceiling the shard plan targets for resident corpus "
             "shards; ignored when --shards is given explicitly",
    )
    _add_backend_flags(run)
    _add_cache_flags(run)

    cache = sub.add_parser(
        "cache", help="inspect or garbage-collect an artifact store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser("ls", help="list stored artifacts and runs")
    cache_info = cache_sub.add_parser(
        "info", help="print the provenance manifest of one artifact"
    )
    cache_info.add_argument(
        "fingerprint", help="artifact fingerprint (prefix accepted)"
    )
    cache_info.add_argument(
        "--full", action="store_true",
        help="include the RNG state blobs in the output",
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="drop artifacts unreachable from recent runs"
    )
    cache_gc.add_argument(
        "--keep-runs", type=int, default=10,
        help="run manifests (and their artifacts) to keep, newest first",
    )
    cache_gc.add_argument(
        "--dry-run", action="store_true", help="report, do not delete"
    )
    for cache_parser in (cache_ls, cache_info, cache_gc):
        cache_parser.add_argument(
            "--cache-dir", default=DEFAULT_CACHE_DIR,
            help="artifact store root (default: $REPRO_CACHE_DIR or "
                 "./.repro-cache)",
        )

    serve = sub.add_parser(
        "serve", help="start the texture inference HTTP service"
    )
    serve.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help="artifact store holding the fitted model (default: "
             "$REPRO_CACHE_DIR or ./.repro-cache)",
    )
    serve.add_argument(
        "--fingerprint", default=None,
        help="experiment fingerprint (prefix) of the run to serve "
             "(default: the most recent run in the store)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker cap for batched fold-in passes (>1 uses the "
             "thread backend; default: serial in-order batches)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8,
        help="max concurrent requests folded in per batch",
    )
    serve.add_argument(
        "--batch-wait-ms", type=float, default=2.0,
        help="how long a batch waits for co-travellers before running",
    )
    serve.add_argument(
        "--fold-in-sweeps", type=int, default=48,
        help="Gibbs fold-in sweeps per request (burn-in is a third)",
    )
    serve.add_argument(
        "--series",
        metavar="PATH",
        default=None,
        help="sample the metrics registry while serving and write a "
             "time-series artifact to PATH on shutdown (p50/p99 "
             "latency over time via `repro obs series`)",
    )
    serve.add_argument(
        "--series-interval",
        type=float,
        default=obs_series.DEFAULT_INTERVAL_S,
        metavar="SECONDS",
        help="sampling interval for --series (default: 1.0)",
    )

    trace_cmd = sub.add_parser(
        "trace", help="inspect trace and profile artifacts"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary",
        help="per-span-name time breakdown + sampler sweep digest",
    )
    trace_summary.add_argument("file", help="JSONL trace file")
    trace_tree = trace_sub.add_parser(
        "tree", help="render the span forest with durations"
    )
    trace_tree.add_argument("file", help="JSONL trace file")
    trace_flame = trace_sub.add_parser(
        "flame",
        help="render a sampling-profiler artifact (--profile / "
             f"${obs_profile.PROFILE_ENV})",
    )
    trace_flame.add_argument("file", help="profile JSON artifact")
    trace_flame.add_argument(
        "--folded", action="store_true",
        help="emit flamegraph folded-stack lines instead of the table",
    )
    trace_flame.add_argument(
        "--limit", type=int, default=15,
        help="rows in the hot-frame table (default: 15)",
    )

    obs_cmd = sub.add_parser(
        "obs", help="inspect observability artifacts"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_series_cmd = obs_sub.add_parser(
        "series",
        help="render a metric time-series artifact (--series)",
    )
    obs_series_cmd.add_argument("file", help="series JSON artifact")
    obs_series_cmd.add_argument(
        "--metric", default=None,
        help="one metric to tabulate (default: sparkline per metric)",
    )
    obs_series_cmd.add_argument(
        "--quantile", type=float, action="append", default=None,
        metavar="Q",
        help="quantiles for a histogram metric's over-time table "
             "(repeatable; default: 0.5 and 0.99)",
    )

    bench = sub.add_parser(
        "bench", help="bench trajectory tooling"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_check = bench_sub.add_parser(
        "check",
        help="fail on cross-run perf regressions (median of recent "
             "rows vs committed floors)",
    )
    bench_check.add_argument(
        "--sampler", default="BENCH_sampler.json",
        help="sampler bench trajectory (default: BENCH_sampler.json)",
    )
    bench_check.add_argument(
        "--sampler-floor", default="benchmarks/sampler_floor.json",
        help="sampler floor file (default: benchmarks/sampler_floor.json)",
    )
    bench_check.add_argument(
        "--serve", default="BENCH_serve.json",
        help="serve bench trajectory (default: BENCH_serve.json)",
    )
    bench_check.add_argument(
        "--serve-floor", default="benchmarks/serve_floor.json",
        help="serve floor file (default: benchmarks/serve_floor.json)",
    )
    bench_check.add_argument(
        "--recent", type=int, default=None,
        help="trajectory rows per cell fed into the median (default: 5)",
    )

    estimate = sub.add_parser("estimate", help="estimate a recipe's texture")
    estimate.add_argument(
        "ingredients",
        nargs="+",
        metavar="NAME=QUANTITY",
        help="e.g. gelatin=5g water=300ml sugar='oosaji 2'",
    )
    estimate.add_argument("--description", default="")
    estimate.add_argument("--recipes", type=int, default=1500)
    estimate.add_argument("--seed", type=int, default=11)

    search = sub.add_parser("search", help="find recipes by texture terms")
    search.add_argument("terms", nargs="+", metavar="TERM")
    search.add_argument("--top", type=int, default=10)
    search.add_argument("--recipes", type=int, default=1500)
    search.add_argument("--seed", type=int, default=11)

    rules = sub.add_parser(
        "rules", help="mine concentration→texture rules from the corpus"
    )
    rules.add_argument("--limit", type=int, default=15)
    rules.add_argument("--min-effect", type=float, default=1.0)
    rules.add_argument("--recipes", type=int, default=1500)
    rules.add_argument("--seed", type=int, default=11)

    dictionary = sub.add_parser(
        "dictionary", help="print the 288-term texture dictionary"
    )
    dictionary.add_argument(
        "--category",
        choices=("hardness", "cohesiveness", "adhesiveness"),
        default=None,
        help="restrict to one annotation category",
    )
    dictionary.add_argument(
        "--gel-only", action="store_true", help="only gel-related terms"
    )

    report = sub.add_parser(
        "report", help="write the full table/figure bundle to a directory"
    )
    report.add_argument("directory")
    report.add_argument("--recipes", type=int, default=1500)
    report.add_argument("--sweeps", type=int, default=300)
    report.add_argument("--seed", type=int, default=11)
    _add_backend_flags(report)
    _add_cache_flags(report)

    from repro.analysis.cli import configure_parser as configure_lint_parser

    lint = sub.add_parser(
        "lint",
        help="project static analysis (RNG/unit/numerics/exception lints)",
    )
    configure_lint_parser(lint)
    return parser


def _add_backend_flags(parser: argparse.ArgumentParser) -> None:
    """Execution flags shared by the model-fitting commands."""
    from repro.core.kernels import KERNEL_CHOICES

    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process", "auto"),
        default="serial",
        help="executor for restart chains (results are backend-independent)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker cap for parallel backends (default: one per CPU)",
    )
    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="dense",
        help=(
            "token-sampling kernel for the Gibbs z-sweep: dense "
            "(default; bit-identical fast path), legacy (original "
            "per-token numpy loop), sparse (SparseLDA buckets + alias "
            "table), alias (LightLDA Metropolis-Hastings, O(1) per "
            "token) or auto (pick from K and corpus shape)"
        ),
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    """The on-disk artifact-store flag shared by pipeline commands."""
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed artifact store; stage outputs are "
             "persisted there and reused (bit-identically) by later runs",
    )


def _apply_parallel_options(
    config: ExperimentConfig, args: argparse.Namespace
) -> ExperimentConfig:
    """Fold --backend/--workers/--restarts/--kernel into an ExperimentConfig."""
    import dataclasses

    backend = getattr(args, "backend", "serial")
    workers = getattr(args, "workers", None)
    restarts = getattr(args, "restarts", 1)
    kernel = getattr(args, "kernel", "dense")
    if restarts < 1:
        raise ModelError("--restarts must be >= 1")
    model = config.model
    if (
        backend != "serial" or workers or restarts > 1
        or kernel != model.kernel
    ):
        model = dataclasses.replace(
            model, backend=backend, n_workers=workers,
            n_restarts=max(restarts, model.n_restarts),
            kernel=kernel,
        )
        config = dataclasses.replace(config, model=model)
    return config


def _cmd_table1() -> int:
    from repro.pipeline.reporting import render_table1
    from repro.pipeline.tables import table1_rows

    print(render_table1(table1_rows()))
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.pipeline.reporting import render_table2a, render_table2b
    from repro.pipeline.tables import table2a_rows, table2b_rows

    config = quick_config(args.recipes, args.sweeps, args.seed)
    if getattr(args, "method", "gibbs") != "gibbs":
        config = dataclasses.replace(config, inference=args.method)
    config = _apply_parallel_options(config, args)
    result = run_experiment(config, cache_dir=args.cache_dir)
    print(render_table2a(table2a_rows(result)))
    print()
    print(render_table2b(table2b_rows(result)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.artifacts.runner import describe_run

    config = quick_config(args.recipes, args.sweeps, args.seed)
    if args.method != "gibbs":
        config = dataclasses.replace(config, inference=args.method)
    if args.no_w2v_filter:
        config = dataclasses.replace(config, use_w2v_filter=False)
    if args.shards is not None:
        n_shards = args.shards
    else:
        from repro.corpus.sharded import plan_shards

        n_shards = plan_shards(args.recipes, args.max_resident_mb)
    if n_shards > 1:
        # A sharded corpus gets the distributed fit to match: shard-local
        # AD-LDA sweeps with the same shard count as the data layout.
        config = dataclasses.replace(
            config,
            n_shards=n_shards,
            model=dataclasses.replace(
                config.model, kernel="adlda", n_shards=n_shards
            ),
        )
    config = _apply_parallel_options(config, args)
    result = run_experiment(config, cache_dir=args.cache_dir)
    manifest = result.provenance
    assert manifest is not None
    print(describe_run(manifest))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(dict(manifest), handle, indent=2, sort_keys=True)
        print(f"wrote provenance manifest to {args.json}")
    if args.require_cached and manifest.get("misses"):
        missed = [
            name
            for name, record in manifest.get("stages", {}).items()
            if not record.get("hit")
        ]
        print(
            f"--require-cached: stages not served from the store: "
            f"{', '.join(missed)}",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.artifacts.store import ArtifactStore
    from repro.serve import (
        FoldInConfig,
        InferenceEngine,
        MicroBatcher,
        ModelBundle,
        make_server,
    )

    bundle = ModelBundle.load(
        ArtifactStore(args.cache_dir), fingerprint=args.fingerprint
    )
    sweeps = args.fold_in_sweeps
    if sweeps < 3:
        raise ModelError("--fold-in-sweeps must be >= 3")
    engine = InferenceEngine(
        bundle, config=FoldInConfig(n_sweeps=sweeps, burn_in=sweeps // 3)
    )
    batcher = MicroBatcher(
        engine,
        max_batch=args.max_batch,
        max_wait_s=args.batch_wait_ms / 1000.0,
        backend="thread" if (args.workers or 1) > 1 else "serial",
        n_workers=args.workers,
    )
    server = make_server(engine, args.host, args.port, batcher=batcher)
    host, port = server.server_address[0], server.server_address[1]
    print(
        f"serving model {bundle.fingerprint} on http://{host}:{port} "
        f"(max_batch={args.max_batch}, workers={args.workers or 1})",
        flush=True,
    )
    # SIGTERM must unwind like Ctrl-C so the trace file and batcher are
    # flushed/closed cleanly (CI kills the background server with TERM).
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        batcher.close()
        print("server stopped", file=sys.stderr)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.artifacts.store import ArtifactStore
    from repro.errors import ArtifactError

    root = Path(args.cache_dir)
    if (
        args.cache_command == "ls"
        and not (root / "objects").is_dir()
        and not (root / "runs").is_dir()
    ):
        # Friendly empty/absent-store path: `repro cache ls` on a fresh
        # checkout must inform, not raise (regression-tested).
        print(f"no store at {root}")
        return 0
    store = ArtifactStore(args.cache_dir)
    if args.cache_command == "ls":
        rows = list(store.iter_artifacts())
        if not rows:
            print(f"no artifacts under {store.root}")
            return 0
        print(f"{'stage':<16} {'fingerprint':<18} {'size':>10}  created")
        for stage_name, fingerprint, manifest in rows:
            size = store.size_of(store.artifact_dir(stage_name, fingerprint))
            created = manifest.get("created_unix")
            stamp = _format_unix(created)
            print(f"{stage_name:<16} {fingerprint:<18} {size:>10}  {stamp}")
        runs = store.iter_runs()
        print(f"{len(rows)} artifacts, {len(runs)} run manifests")
        return 0
    if args.cache_command == "info":
        matches = store.find(args.fingerprint)
        if not matches:
            raise ArtifactError(
                f"no artifact matches fingerprint {args.fingerprint!r}"
            )
        for _, _, manifest in matches:
            if not args.full:
                manifest = {
                    key: value
                    for key, value in manifest.items()
                    if key not in ("rng_state_in", "rng_state_out")
                }
            print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    removed, freed = store.gc(keep_runs=args.keep_runs, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"{verb} {len(removed)} entries, {freed} bytes")
    for path in removed:
        print(f"  {path}")
    return 0


def _format_unix(stamp: float | None) -> str:
    import datetime

    if stamp is None:
        return "-"
    return datetime.datetime.fromtimestamp(stamp).strftime("%Y-%m-%d %H:%M:%S")


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.pipeline.figures import fig3_data, fig4_data
    from repro.pipeline.reporting import render_fig3, render_fig4
    from repro.rheology.studies import BAVAROIS, MILK_JELLY

    config = _apply_parallel_options(
        quick_config(args.recipes, args.sweeps, args.seed), args
    )
    result = run_experiment(config, cache_dir=args.cache_dir)
    for dish in (BAVAROIS, MILK_JELLY):
        print(render_fig3(fig3_data(result, dish)))
        print()
        print(render_fig4(fig4_data(result, dish)))
        print()
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.core.estimator import TextureEstimator
    from repro.corpus.recipe import Ingredient, Recipe

    ingredients = []
    for pair in args.ingredients:
        name, _, quantity = pair.partition("=")
        if not name or not quantity:
            print(f"cannot parse ingredient {pair!r}; use NAME=QUANTITY",
                  file=sys.stderr)
            return 2
        ingredients.append(Ingredient(name.strip(), quantity.strip()))
    recipe = Recipe(
        recipe_id="cli",
        title="cli recipe",
        description=args.description,
        ingredients=tuple(ingredients),
    )
    result = run_experiment(quick_config(args.recipes, seed=args.seed))
    estimate = TextureEstimator(result).estimate(recipe)
    print(f"topic: {estimate.topic}")
    print("predicted texture terms:")
    for surface, probability in estimate.predicted_terms[:6]:
        print(f"  {surface:<16} {probability:.3f}")
    rheology = estimate.expected_rheology()
    if rheology is not None:
        rows = ", ".join(str(s.data_id) for s in estimate.linked_settings)
        print(f"linked Table I rows: {rows}")
        print(f"expected rheology: {rheology}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.core.search import TextureSearch
    from repro.errors import UnknownTermError

    result = run_experiment(quick_config(args.recipes, seed=args.seed))
    search = TextureSearch(result)
    try:
        hits = search.query(args.terms, top=args.top)
    except UnknownTermError as exc:
        print(f"term not in the dataset vocabulary: {exc.surface}",
              file=sys.stderr)
        return 2
    print(f"top {len(hits)} recipes for {' + '.join(args.terms)}:")
    for hit in hits:
        recipe = next(
            r for r in result.corpus if r.recipe_id == hit.recipe_id
        )
        said = "mentions it" if hit.mentions_query else "inferred"
        print(f"  {hit.recipe_id}  {recipe.title:<28} p={hit.score:.4f} ({said})")
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    from repro.eval.rules import RuleMiner

    result = run_experiment(quick_config(args.recipes, seed=args.seed))
    miner = RuleMiner(min_support=10, min_effect=args.min_effect)
    print(RuleMiner.render(miner.mine(result.dataset), limit=args.limit))
    return 0


def _cmd_dictionary(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.lexicon.categories import AXES, TextureCategory
    from repro.lexicon.dictionary import build_dictionary
    from repro.lexicon.kana import to_katakana

    dictionary = build_dictionary()
    terms = list(dictionary)
    if args.category:
        category = TextureCategory(args.category)
        terms = [t for t in terms if t.in_category(category)]
    if args.gel_only:
        terms = [t for t in terms if t.gel_related]
    print(f"{'surface':<16} {'katakana':<10} {'gel':<4} "
          f"{'H':>5} {'C':>5} {'A':>5}  gloss")
    for term in terms:
        try:
            kana = to_katakana(term.surface)
        except ReproError:
            kana = "-"
        h, c, a = (term.polarity_on(axis) for axis in AXES)
        print(
            f"{term.surface:<16} {kana:<10} "
            f"{'yes' if term.gel_related else 'no':<4} "
            f"{h:+5.2f} {c:+5.2f} {a:+5.2f}  {term.gloss}"
        )
    print(f"\n{len(terms)} terms")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.pipeline.bundle import write_report_bundle

    config = _apply_parallel_options(
        quick_config(args.recipes, args.sweeps, args.seed), args
    )
    result = run_experiment(config, cache_dir=args.cache_dir)
    written = write_report_bundle(result, args.directory)
    for name, path in sorted(written.items()):
        print(f"  {name:<14} {path}")
    print(f"wrote {len(written)} artefacts to {args.directory}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_from_args

    return run_from_args(args)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import read_trace, render_tree, summarise

    if args.trace_command == "flame":
        report = obs_profile.read_report(args.file)
        if args.folded:
            for line in report.folded():
                print(line)
        else:
            print(report.render(limit=args.limit))
        return 0
    records = read_trace(args.file)
    if args.trace_command == "summary":
        print(summarise(records))
    else:
        print(render_tree(records))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    report = obs_series.read_series(args.file)
    if args.metric is None:
        if not report.names():
            print("no metrics recorded")
            return 0
        for name in report.names():
            print(report.render(name))
        return 0
    name = args.metric
    if report.kind(name) == "histogram":
        quantiles = args.quantile if args.quantile else [0.5, 0.99]
        columns = {
            q: dict(report.quantile_series(name, q)) for q in quantiles
        }
        rate = dict(report.rate_series(name))
        times = sorted(set().union(rate, *columns.values()))
        header = "t_offset_s " + " ".join(
            f"{'p' + format(q * 100, 'g'):>12}" for q in quantiles
        )
        print(f"{name} ({len(times)} intervals)")
        print(header + f" {'obs_per_sec':>12}")
        t0 = times[0] if times else 0.0
        for t in times:
            cells = " ".join(
                f"{columns[q][t]:>12.6g}" if t in columns[q] else
                f"{'-':>12}"
                for q in quantiles
            )
            rate_cell = (
                f"{rate[t]:>12.6g}" if t in rate else f"{'-':>12}"
            )
            print(f"{t - t0:>10.1f} {cells} {rate_cell}")
        return 0
    print(f"{name}")
    print(f"{'t_offset_s':>10} {'value':>14}")
    pairs = report.values(name)
    t0 = pairs[0][0] if pairs else 0.0
    for t, value in pairs:
        cell = f"{value:>14.6g}" if value is not None else f"{'-':>14}"
        print(f"{t - t0:>10.1f} {cell}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import regress

    recent = args.recent if args.recent is not None else regress.DEFAULT_RECENT
    findings = regress.check_files(
        sampler_path=args.sampler,
        sampler_floor_path=args.sampler_floor,
        serve_path=args.serve,
        serve_floor_path=args.serve_floor,
        recent=recent,
    )
    if findings:
        print(f"{len(findings)} perf regression(s) detected:", file=sys.stderr)
        for finding in findings:
            print(f"  {finding.message()}", file=sys.stderr)
        return 1
    print(
        f"bench check ok: trajectories clear the committed floors "
        f"(median of last {recent} rows per cell)"
    )
    return 0


def _trace_target(args: argparse.Namespace) -> str | None:
    """The trace path for this invocation: --trace wins over the env."""
    explicit = getattr(args, "trace", None)
    if explicit:
        return str(explicit)
    return os.environ.get(obs_trace.TRACE_ENV) or None


def _profile_target(args: argparse.Namespace) -> str | None:
    """The profile path for this invocation: --profile wins over the env."""
    explicit = getattr(args, "profile", None)
    if explicit:
        return str(explicit)
    return os.environ.get(obs_profile.PROFILE_ENV) or None


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    obs_log.configure(level=args.log_level, verbosity=args.verbose)
    # The inspection commands never self-instrument: `repro trace` on a
    # trace file must not append to it, and `obs`/`bench` are readers.
    inspecting = args.command in ("trace", "obs", "bench")
    trace_path = None if inspecting else _trace_target(args)
    profile_path = None if inspecting else _profile_target(args)
    series_path = None if inspecting else getattr(args, "series", None)
    try:
        if trace_path is not None:
            obs_trace.enable(trace_path)
        if profile_path is not None:
            obs_profile.enable(profile_path)
        if series_path is not None:
            obs_series.enable(
                series_path,
                interval_s=getattr(
                    args, "series_interval", obs_series.DEFAULT_INTERVAL_S
                ),
            )
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "table1":
            return _cmd_table1()
        if args.command == "pipeline":
            return _cmd_pipeline(args)
        if args.command == "figures":
            return _cmd_figures(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "obs":
            return _cmd_obs(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "search":
            return _cmd_search(args)
        if args.command == "rules":
            return _cmd_rules(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "dictionary":
            return _cmd_dictionary(args)
        return _cmd_estimate(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if series_path is not None:
            obs_series.disable()
            print(f"wrote metric series to {series_path}", file=sys.stderr)
        if profile_path is not None:
            obs_profile.disable()
            print(f"wrote profile to {profile_path}", file=sys.stderr)
        if trace_path is not None:
            obs_trace.disable()
            print(f"wrote trace to {trace_path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
