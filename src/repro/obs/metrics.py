"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry is a process-local, thread-safe name → instrument map fed
from the package's hot paths (artifact cache hits/misses/bytes,
executor task wait/run times and fallbacks, per-sweep sampler
throughput and likelihood). Samplers only record per *sweep* — never
per token — and gate their recording on :func:`repro.obs.trace.is_enabled`,
so an untraced fit pays nothing.

Histograms use fixed log-scale buckets (decades from 1 ns to 1 Gs by
default): per-observation cost is one bisect into a short static bound
list, and two histograms of the same name always merge cleanly because
the bounds never depend on the data.

Metric names are dotted lowercase (``cache.hit``,
``executor.task_run_seconds``, ``sampler.tokens_per_sec``); see
``docs/observability.md`` for the full taxonomy.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Union

from repro.errors import ObservabilityError

#: Default histogram bucket upper bounds: log-scale decades. The last
#: bucket is the overflow (+inf) bucket and has no explicit bound.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(10.0 ** e for e in range(-9, 10))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """A value that can go up and down; remembers the last set."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value = (self._value or 0.0) + amount

    @property
    def value(self) -> float | None:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self._value}


class Histogram:
    """Counts of observations in fixed log-scale buckets.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    extra overflow bucket catches everything above the last bound.
    """

    kind = "histogram"

    def __init__(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if not bounds or any(
            b >= c for b, c in zip(bounds, bounds[1:])
        ):
            raise ObservabilityError(
                f"histogram {name!r} needs strictly increasing bounds"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_right(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float | None:
        return self._total / self._count if self._count else None

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self._count,
            "total": self._total,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
            "bounds": list(self.bounds),
            "bucket_counts": list(self._counts),
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Thread-safe name → instrument registry with get-or-create."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory: Any, kind: type) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ObservabilityError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, bounds), Histogram
        )

    def get(self, name: str) -> Metric | None:
        """The registered metric of that name, if any."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A JSON-ready view of every registered metric."""
        with self._lock:
            return {
                name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())
            }

    def reset(self) -> None:
        """Drop every registered metric (tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide default registry every instrumented module feeds.
registry = MetricsRegistry()
