"""Metric time-series: periodic registry sampling into ring buffers.

A :class:`SeriesRecorder` thread snapshots a
:class:`~repro.obs.metrics.MetricsRegistry` every ``interval_s``
seconds into per-metric ring buffers (``collections.deque`` with
``maxlen``), so memory stays bounded no matter how long a run or a
server lives. Counters and gauges store ``(t, value)`` points;
histograms store ``(t, count, total, bucket_counts)`` so quantiles
*over time* can be derived after the fact from successive bucket-count
deltas — the registry itself never has to pay for quantile sketches on
the hot path.

The persisted artifact (``format: repro-series``, schema v1) carries
provenance and one point-list per metric; :class:`SeriesReport` parses
it back and renders terminal views (``repro obs series``), including
p50/p99-over-time for histogram metrics such as
``serve.latency_seconds``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time
from collections import deque
from typing import Any, TextIO

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import registry as default_registry

#: Schema version stamped into every series artifact.
SERIES_SCHEMA_VERSION = 1

#: ``format`` key value identifying series artifacts.
SERIES_FORMAT = "repro-series"

#: Default sampling interval between registry snapshots.
DEFAULT_INTERVAL_S = 1.0

#: Default ring-buffer capacity per metric (points, not bytes).
DEFAULT_MAX_POINTS = 600

#: Glyphs for the terminal sparkline renderer.
_SPARK = "▁▂▃▄▅▆▇█"


class SeriesRecorder:
    """Samples a registry on a daemon thread into bounded ring buffers.

    Use via the module-level :func:`enable` / :func:`disable` pair in
    production code; direct construction with explicit ``start`` /
    ``stop`` (or manual :meth:`sample` calls) is for tests.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        interval_s: float = DEFAULT_INTERVAL_S,
        max_points: int = DEFAULT_MAX_POINTS,
    ) -> None:
        if interval_s <= 0:
            raise ObservabilityError(
                f"series interval_s must be > 0, got {interval_s}"
            )
        if max_points < 2:
            raise ObservabilityError("series max_points must be >= 2")
        self.registry = registry if registry is not None else default_registry
        self.interval_s = float(interval_s)
        self.max_points = max_points
        self.started_unix = 0.0
        self.n_samples = 0
        self._kinds: dict[str, str] = {}
        self._bounds: dict[str, list[float]] = {}
        self._points: dict[str, deque[list[Any]]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            raise ObservabilityError("series recorder already started")
        self._stop.clear()
        with self._lock:
            self.started_unix = time.time()
            self._thread = threading.Thread(
                target=self._run, name="repro-series", daemon=True
            )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)  # never under the lock: sample holds it
        with self._lock:
            self._thread = None
        self.sample()  # final point so short runs still get data

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def sample(self, now: float | None = None) -> None:
        """Take one snapshot of every registered metric."""
        t = time.time() if now is None else now
        snapshot = self.registry.snapshot()
        with self._lock:
            self.n_samples += 1
            for name, snap in snapshot.items():
                kind = str(snap.get("kind"))
                points = self._points.get(name)
                if points is None:
                    points = deque(maxlen=self.max_points)
                    self._points[name] = points
                    self._kinds[name] = kind
                    if kind == "histogram":
                        self._bounds[name] = list(snap.get("bounds") or [])
                if kind == "histogram":
                    points.append(
                        [
                            t,
                            int(snap.get("count") or 0),
                            float(snap.get("total") or 0.0),
                            list(snap.get("bucket_counts") or []),
                        ]
                    )
                else:
                    value = snap.get("value")
                    points.append(
                        [t, float(value) if value is not None else None]
                    )

    def to_json(self) -> dict[str, Any]:
        """The persisted artifact payload (``repro-series`` v1)."""
        with self._lock:
            metrics = {}
            for name, points in sorted(self._points.items()):
                entry: dict[str, Any] = {
                    "kind": self._kinds[name],
                    "points": [list(p) for p in points],
                }
                if name in self._bounds:
                    entry["bounds"] = list(self._bounds[name])
                metrics[name] = entry
        return {
            "format": SERIES_FORMAT,
            "v": SERIES_SCHEMA_VERSION,
            "interval_s": self.interval_s,
            "max_points": self.max_points,
            "started_unix": self.started_unix,
            "n_samples": self.n_samples,
            "pid": os.getpid(),
            "python": platform.python_version(),
            "argv": list(sys.argv),
            "metrics": metrics,
        }

    def report(self) -> "SeriesReport":
        return SeriesReport.from_json(self.to_json())


class SeriesReport:
    """A parsed series artifact with derived views."""

    def __init__(
        self,
        interval_s: float,
        n_samples: int,
        started_unix: float,
        metrics: dict[str, dict[str, Any]],
    ) -> None:
        self.interval_s = interval_s
        self.n_samples = n_samples
        self.started_unix = started_unix
        self.metrics = metrics

    @classmethod
    def from_json(cls, payload: Any) -> "SeriesReport":
        if not isinstance(payload, dict):
            raise ObservabilityError("series artifact must be a JSON object")
        if payload.get("format") != SERIES_FORMAT:
            raise ObservabilityError(
                f"not a series artifact (format={payload.get('format')!r})"
            )
        if payload.get("v") != SERIES_SCHEMA_VERSION:
            raise ObservabilityError(
                f"unsupported series schema v{payload.get('v')!r}"
            )
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            raise ObservabilityError("series artifact has no metrics map")
        for name, entry in metrics.items():
            if not isinstance(entry, dict) or not isinstance(
                entry.get("points"), list
            ):
                raise ObservabilityError(
                    f"series metric {name!r} needs a points list"
                )
        return cls(
            interval_s=float(payload.get("interval_s", 0.0)),
            n_samples=int(payload.get("n_samples", 0)),
            started_unix=float(payload.get("started_unix", 0.0)),
            metrics=metrics,
        )

    def names(self) -> list[str]:
        return sorted(self.metrics)

    def kind(self, name: str) -> str:
        return str(self._entry(name).get("kind"))

    def _entry(self, name: str) -> dict[str, Any]:
        entry = self.metrics.get(name)
        if entry is None:
            raise ObservabilityError(f"no series for metric {name!r}")
        return entry

    def values(self, name: str) -> list[tuple[float, float | None]]:
        """``(t, value)`` points for a counter or gauge series."""
        entry = self._entry(name)
        if entry.get("kind") == "histogram":
            raise ObservabilityError(
                f"{name!r} is a histogram; use quantile_series or "
                "rate_series"
            )
        return [(float(p[0]), p[1]) for p in entry["points"]]

    def rate_series(self, name: str) -> list[tuple[float, float]]:
        """Per-second increase between consecutive points.

        For counters this is the classic rate view; for histograms it
        is the observation rate (``count`` deltas over time).
        """
        entry = self._entry(name)
        points = entry["points"]
        is_hist = entry.get("kind") == "histogram"
        out: list[tuple[float, float]] = []
        for prev, cur in zip(points, points[1:]):
            dt = float(cur[0]) - float(prev[0])
            if dt <= 0:
                continue
            a = float(prev[1]) if prev[1] is not None else 0.0
            b = float(cur[1]) if cur[1] is not None else 0.0
            if is_hist:
                a, b = float(prev[1]), float(cur[1])
            out.append((float(cur[0]), max(0.0, (b - a) / dt)))
        return out

    def quantile_series(
        self, name: str, q: float
    ) -> list[tuple[float, float]]:
        """Per-interval quantile estimates for a histogram series.

        For each pair of consecutive snapshots, computes the ``q``
        quantile of the observations that happened *between* them from
        the bucket-count deltas (the estimate is the upper bound of the
        bucket where the cumulative delta crosses ``q``). Intervals
        with no new observations are skipped.
        """
        if not 0.0 < q < 1.0:
            raise ObservabilityError(f"quantile must be in (0, 1), got {q}")
        entry = self._entry(name)
        if entry.get("kind") != "histogram":
            raise ObservabilityError(
                f"{name!r} is not a histogram; quantiles need buckets"
            )
        bounds = [float(b) for b in entry.get("bounds") or []]
        points = entry["points"]
        out: list[tuple[float, float]] = []
        for prev, cur in zip(points, points[1:]):
            prev_counts = prev[3]
            cur_counts = cur[3]
            deltas = [
                max(0, int(b) - int(a))
                for a, b in zip(prev_counts, cur_counts)
            ]
            total = sum(deltas)
            if total == 0:
                continue
            threshold = q * total
            cumulative = 0
            estimate = bounds[-1] if bounds else float("inf")
            for index, delta in enumerate(deltas):
                cumulative += delta
                if cumulative >= threshold:
                    # the overflow bucket has no upper edge; report the
                    # last finite bound as a floor
                    estimate = (
                        bounds[index]
                        if index < len(bounds)
                        else bounds[-1]
                    )
                    break
            out.append((float(cur[0]), estimate))
        return out

    def render(self, name: str, width: int = 60) -> str:
        """A sparkline + summary line for one metric's series."""
        entry = self._entry(name)
        if entry.get("kind") == "histogram":
            pairs = self.quantile_series(name, 0.5)
            label = f"{name} p50"
        else:
            pairs = [
                (t, v) for t, v in self.values(name) if v is not None
            ]
            label = name
        if not pairs:
            return f"{name}: no data"
        values = [v for _, v in pairs][-width:]
        lo, hi = min(values), max(values)
        if hi > lo:
            glyphs = "".join(
                _SPARK[
                    min(
                        len(_SPARK) - 1,
                        int((v - lo) / (hi - lo) * len(_SPARK)),
                    )
                ]
                for v in values
            )
        else:
            glyphs = _SPARK[0] * len(values)
        return (
            f"{label}: {glyphs} "
            f"[min {lo:.6g} max {hi:.6g} last {values[-1]:.6g}]"
        )


#: The module-level flag: ``None`` means series recording is disabled.
_recorder: SeriesRecorder | None = None
#: Output path bound at :func:`enable` time, written by :func:`disable`.
_output_path: str | None = None


def is_enabled() -> bool:
    """Whether a series recorder is running."""
    return _recorder is not None


def active() -> SeriesRecorder | None:
    """The running recorder, if any."""
    return _recorder


def enable(
    path: str | os.PathLike[str] | None = None,
    interval_s: float = DEFAULT_INTERVAL_S,
    max_points: int = DEFAULT_MAX_POINTS,
    registry: MetricsRegistry | None = None,
) -> SeriesRecorder:
    """Start a recorder; :func:`disable` writes the artifact to ``path``.

    Replaces any running recorder (persisting its artifact first).
    """
    global _recorder, _output_path
    disable()
    recorder = SeriesRecorder(
        registry=registry, interval_s=interval_s, max_points=max_points
    )
    recorder.start()
    _recorder = recorder
    _output_path = os.fspath(path) if path is not None else None
    return recorder


def disable() -> SeriesReport | None:
    """Stop the recorder, persist its artifact, return the report.

    A no-op returning ``None`` when no recorder is running.
    """
    global _recorder, _output_path
    recorder = _recorder
    if recorder is None:
        return None
    path = _output_path
    _recorder = None
    _output_path = None
    recorder.stop()
    report = recorder.report()
    if path is not None:
        write_series(recorder, path)
    return report


def write_series(
    recorder: SeriesRecorder, target: str | os.PathLike[str] | TextIO
) -> None:
    """Serialise a recorder's series as JSON to a path or stream."""
    payload = json.dumps(recorder.to_json(), sort_keys=True)
    if hasattr(target, "write"):
        target.write(payload + "\n")  # type: ignore[union-attr]
        return
    with open(os.fspath(target), "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")


def read_series(path: str | os.PathLike[str]) -> SeriesReport:
    """Load and validate a persisted series artifact."""
    fspath = os.fspath(path)
    if not os.path.exists(fspath):
        raise ObservabilityError(f"no series file at {fspath}")
    try:
        with open(fspath, encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"{fspath} is not valid JSON: {exc}"
        ) from exc
    return SeriesReport.from_json(payload)
