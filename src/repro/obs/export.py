"""Trace-file schema and JSONL round-trip helpers.

A trace file is JSON Lines: one record per line, two kinds::

    {"kind": "span", "v": 1, "trace_id": ..., "span_id": ...,
     "parent_id": ... | null, "name": ..., "start_unix": ...,
     "duration_s": ..., "status": "ok" | "error", "pid": ...,
     "thread": ..., "attrs": {...}}

    {"kind": "event", "v": 1, "trace_id": ..., "span_id": ... | null,
     "name": ..., "time_unix": ..., "pid": ..., "attrs": {...}}

Records forwarded from worker processes additionally carry
``"forwarded": true``. Appending runs to one file is legal (JSONL
concatenates); readers group by ``trace_id``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Mapping

from repro.errors import ObservabilityError
from repro.obs.trace import TRACE_SCHEMA_VERSION

_SPAN_KEYS: dict[str, type | tuple[type, ...]] = {
    "trace_id": str,
    "span_id": str,
    "name": str,
    "start_unix": (int, float),
    "duration_s": (int, float),
    "status": str,
    "pid": int,
    "attrs": dict,
}

_EVENT_KEYS: dict[str, type | tuple[type, ...]] = {
    "trace_id": str,
    "name": str,
    "time_unix": (int, float),
    "pid": int,
    "attrs": dict,
}


def validate_record(record: Any, where: str = "trace") -> dict[str, Any]:
    """Check one parsed record against the schema; returns it."""
    if not isinstance(record, dict):
        raise ObservabilityError(f"{where}: record is not a JSON object")
    kind = record.get("kind")
    if kind not in ("span", "event"):
        raise ObservabilityError(f"{where}: unknown record kind {kind!r}")
    version = record.get("v")
    if version != TRACE_SCHEMA_VERSION:
        raise ObservabilityError(
            f"{where}: schema version {version!r} "
            f"(this reader understands {TRACE_SCHEMA_VERSION})"
        )
    required = _SPAN_KEYS if kind == "span" else _EVENT_KEYS
    for key, types in required.items():
        if key not in record:
            raise ObservabilityError(f"{where}: {kind} record lacks {key!r}")
        if not isinstance(record[key], types):
            raise ObservabilityError(
                f"{where}: {kind} field {key!r} has type "
                f"{type(record[key]).__name__}"
            )
    parent = record.get("parent_id" if kind == "span" else "span_id")
    if parent is not None and not isinstance(parent, str):
        raise ObservabilityError(f"{where}: bad parent reference {parent!r}")
    return record


def read_trace(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Parse and validate a JSONL trace file (blank lines skipped)."""
    records: list[dict[str, Any]] = []
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                where = f"{path}:{lineno}"
                try:
                    parsed = json.loads(line)
                except ValueError as exc:
                    raise ObservabilityError(
                        f"{where}: not valid JSON: {exc}"
                    ) from exc
                records.append(validate_record(parsed, where=where))
    except FileNotFoundError as exc:
        raise ObservabilityError(f"no trace file at {path}") from exc
    return records


def validate_trace(records: Iterable[Mapping[str, Any]]) -> None:
    """Cross-record checks: unique span ids, resolvable parents.

    Parent references may cross process boundaries (forwarded records),
    but every non-null parent must exist *somewhere* in the trace.
    """
    span_ids: set[str] = set()
    parents: list[tuple[str, str]] = []
    for record in records:
        if record.get("kind") != "span":
            continue
        span_id = str(record["span_id"])
        if span_id in span_ids:
            raise ObservabilityError(f"duplicate span id {span_id}")
        span_ids.add(span_id)
        parent = record.get("parent_id")
        if parent is not None:
            parents.append((span_id, str(parent)))
    for span_id, parent in parents:
        if parent not in span_ids:
            raise ObservabilityError(
                f"span {span_id} references unknown parent {parent}"
            )
