"""A zero-dependency wall-clock sampling profiler.

A dedicated daemon thread reads :func:`sys._current_frames` at a
configurable rate (default ~97 Hz — a prime, so the sampler never
phase-locks with periodic work) and folds each observed thread's stack
into a bounded ``(span, stack) -> count`` table. Stacks are attributed
to the innermost open :mod:`repro.obs.trace` span of the sampled
thread via the tracer's cross-thread span-name stacks (context
variables are not readable across threads), so a flame view can answer
"which frames burn the ``lda.fit`` budget" directly.

Like the tracer, the module holds at most one active
:class:`Profiler` and is a **strict no-op when disabled**: no thread,
no per-span bookkeeping (span tracking in :mod:`repro.obs.trace` is
switched on only while a profiler runs), no RNG, so profiled and
unprofiled fits are bit-identical by construction.

The persisted artifact (``format: repro-profile``, schema v1) carries
provenance (pid, python version, command) plus the folded stacks; see
:class:`ProfileReport` for rendering (``folded()`` emits standard
``frame;frame count`` lines consumable by external flamegraph tools).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time
from typing import Any, TextIO

from repro.errors import ObservabilityError
from repro.obs import trace

#: Schema version stamped into every profile artifact.
PROFILE_SCHEMA_VERSION = 1

#: ``format`` key value identifying profile artifacts.
PROFILE_FORMAT = "repro-profile"

#: Environment variable naming a profile output path; the CLI enables
#: profiling to that path for any command when it is set.
PROFILE_ENV = "REPRO_PROFILE"

#: Environment variable overriding the sampling rate in Hz.
PROFILE_HZ_ENV = "REPRO_PROFILE_HZ"

#: Default sampling rate. Prime, so periodic work cannot phase-lock.
DEFAULT_HZ = 97.0

#: Bound on distinct (span, stack) keys before folding into overflow.
DEFAULT_MAX_STACKS = 10_000

#: Bound on recorded stack depth (frames beyond it are dropped,
#: root-most first, and the stack is marked truncated).
DEFAULT_MAX_DEPTH = 64

#: Synthetic stack for samples past the ``max_stacks`` bound.
OVERFLOW_FRAME = "~overflow"

#: Span label for samples on threads with no open span.
NO_SPAN = "-"


def _frame_label(frame: Any) -> str:
    """``module:qualname`` for one frame (qualname needs 3.11+)."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    func = getattr(code, "co_qualname", None) or code.co_name
    return f"{module}:{func}"


class Profiler:
    """The sampling thread plus its folded-stack accumulator.

    Use via the module-level :func:`enable` / :func:`disable` pair in
    production code; direct construction with explicit ``start`` /
    ``stop`` is for tests.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_stacks: int = DEFAULT_MAX_STACKS,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        if hz <= 0:
            raise ObservabilityError(f"profiler hz must be > 0, got {hz}")
        if max_stacks < 1:
            raise ObservabilityError("profiler max_stacks must be >= 1")
        if max_depth < 1:
            raise ObservabilityError("profiler max_depth must be >= 1")
        self.hz = float(hz)
        self.interval_s = 1.0 / self.hz
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self.n_samples = 0
        self.truncated = False
        self.started_unix = 0.0
        self.duration_s = 0.0
        self._counts: dict[tuple[str, tuple[str, ...]], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_perf = 0.0

    def start(self) -> None:
        if self._thread is not None:
            raise ObservabilityError("profiler already started")
        self._stop.clear()
        with self._lock:
            self.started_unix = time.time()
            self._started_perf = time.perf_counter()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)  # never under the lock: _sample holds it
        with self._lock:
            self._thread = None
            self.duration_s = time.perf_counter() - self._started_perf

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(own)

    def _sample(self, own_ident: int) -> None:
        # Telemetry machinery must not pollute the profile: skip our
        # own thread and the other repro-obs daemons (series recorder),
        # which spend their lives idling in Condition.wait.
        skip = {own_ident}
        for thread in threading.enumerate():
            if thread.name.startswith("repro-") and thread.ident is not None:
                skip.add(thread.ident)
        frames = sys._current_frames()
        for ident, frame in frames.items():
            if ident in skip:
                continue
            stack: list[str] = []
            depth = 0
            depth_truncated = False
            f: Any = frame
            while f is not None:
                if depth >= self.max_depth:
                    depth_truncated = True
                    break
                stack.append(_frame_label(f))
                f = f.f_back
                depth += 1
            if not stack:
                continue
            stack.reverse()  # root-first, the folded-stack convention
            span = trace.thread_span_name(ident) or NO_SPAN
            key = (span, tuple(stack))
            with self._lock:
                if depth_truncated:
                    self.truncated = True
                counts = self._counts
                if key not in counts and len(counts) >= self.max_stacks:
                    self.truncated = True
                    key = (span, (OVERFLOW_FRAME,))
                counts[key] = counts.get(key, 0) + 1
                self.n_samples += 1

    def report(self) -> "ProfileReport":
        """Fold the accumulated samples into an immutable report."""
        with self._lock:
            stacks = [
                {"span": span, "stack": list(stack), "count": count}
                for (span, stack), count in sorted(
                    self._counts.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ]
        return ProfileReport(
            hz=self.hz,
            n_samples=self.n_samples,
            duration_s=self.duration_s,
            stacks=stacks,
            truncated=self.truncated,
            started_unix=self.started_unix,
        )


class ProfileReport:
    """An immutable folded-stack profile with provenance + renderers."""

    def __init__(
        self,
        hz: float,
        n_samples: int,
        duration_s: float,
        stacks: list[dict[str, Any]],
        truncated: bool = False,
        started_unix: float = 0.0,
    ) -> None:
        self.hz = hz
        self.n_samples = n_samples
        self.duration_s = duration_s
        self.stacks = stacks
        self.truncated = truncated
        self.started_unix = started_unix

    def to_json(self) -> dict[str, Any]:
        """The persisted artifact payload (``repro-profile`` v1)."""
        return {
            "format": PROFILE_FORMAT,
            "v": PROFILE_SCHEMA_VERSION,
            "hz": self.hz,
            "n_samples": self.n_samples,
            "duration_s": self.duration_s,
            "started_unix": self.started_unix,
            "truncated": self.truncated,
            "pid": os.getpid(),
            "python": platform.python_version(),
            "argv": list(sys.argv),
            "stacks": self.stacks,
        }

    @classmethod
    def from_json(cls, payload: Any) -> "ProfileReport":
        """Parse and validate a persisted profile artifact."""
        if not isinstance(payload, dict):
            raise ObservabilityError("profile artifact must be a JSON object")
        if payload.get("format") != PROFILE_FORMAT:
            raise ObservabilityError(
                f"not a profile artifact (format={payload.get('format')!r})"
            )
        if payload.get("v") != PROFILE_SCHEMA_VERSION:
            raise ObservabilityError(
                f"unsupported profile schema v{payload.get('v')!r}"
            )
        stacks = payload.get("stacks")
        if not isinstance(stacks, list):
            raise ObservabilityError("profile artifact has no stacks list")
        for row in stacks:
            if (
                not isinstance(row, dict)
                or not isinstance(row.get("span"), str)
                or not isinstance(row.get("stack"), list)
                or not isinstance(row.get("count"), int)
            ):
                raise ObservabilityError(
                    "profile stack rows need span/stack/count"
                )
        return cls(
            hz=float(payload.get("hz", 0.0)),
            n_samples=int(payload.get("n_samples", 0)),
            duration_s=float(payload.get("duration_s", 0.0)),
            stacks=stacks,
            truncated=bool(payload.get("truncated", False)),
            started_unix=float(payload.get("started_unix", 0.0)),
        )

    def folded(self, with_span: bool = True) -> list[str]:
        """Standard flamegraph folded-stack lines, hottest first.

        With ``with_span`` the attributed span name leads each stack as
        a synthetic root frame, so span attribution survives round
        trips through external flamegraph tooling.
        """
        lines = []
        for row in self.stacks:
            frames = list(row["stack"])
            if with_span:
                frames.insert(0, str(row["span"]))
            lines.append(";".join(frames) + f" {row['count']}")
        return lines

    def attribution(self, needle: str) -> float:
        """Fraction of samples whose stack mentions ``needle``.

        Matches substrings of ``module:qualname`` frame labels; 0.0
        when the profile holds no samples.
        """
        if self.n_samples == 0:
            return 0.0
        hit = sum(
            row["count"]
            for row in self.stacks
            if any(needle in frame for frame in row["stack"])
        )
        return hit / self.n_samples

    def top_functions(self, limit: int = 15) -> list[tuple[str, int, int]]:
        """``(frame, self_count, total_count)`` rows, hottest first.

        ``self`` counts samples where the frame is the leaf;
        ``total`` counts samples where it appears anywhere.
        """
        self_counts: dict[str, int] = {}
        total_counts: dict[str, int] = {}
        for row in self.stacks:
            stack = row["stack"]
            count = row["count"]
            if stack:
                leaf = stack[-1]
                self_counts[leaf] = self_counts.get(leaf, 0) + count
            for frame in set(stack):
                total_counts[frame] = total_counts.get(frame, 0) + count
        rows = [
            (frame, self_counts.get(frame, 0), total)
            for frame, total in total_counts.items()
        ]
        rows.sort(key=lambda r: (-r[1], -r[2], r[0]))
        return rows[:limit]

    def render(self, limit: int = 15) -> str:
        """A terminal table of the hottest frames."""
        header = (
            f"profile: {self.n_samples} samples @ {self.hz:g} Hz over "
            f"{self.duration_s:.2f}s"
            + (" (truncated)" if self.truncated else "")
        )
        lines = [header, f"{'self':>6} {'total':>6}  frame"]
        n = max(self.n_samples, 1)
        for frame, self_count, total in self.top_functions(limit):
            lines.append(
                f"{100.0 * self_count / n:5.1f}% "
                f"{100.0 * total / n:5.1f}%  {frame}"
            )
        return "\n".join(lines)


#: The module-level flag: ``None`` means profiling is disabled.
_profiler: Profiler | None = None
#: Output path bound at :func:`enable` time, written by :func:`disable`.
_output_path: str | None = None


def is_enabled() -> bool:
    """Whether a profiler is running (the hot-path guard)."""
    return _profiler is not None


def active() -> Profiler | None:
    """The running profiler, if any."""
    return _profiler


def default_hz() -> float:
    """Sampling rate from :data:`PROFILE_HZ_ENV`, else the default."""
    raw = os.environ.get(PROFILE_HZ_ENV)
    if raw is None:
        return DEFAULT_HZ
    try:
        value = float(raw)
    except ValueError as exc:
        raise ObservabilityError(
            f"{PROFILE_HZ_ENV} must be a number, got {raw!r}"
        ) from exc
    if value <= 0:
        raise ObservabilityError(f"{PROFILE_HZ_ENV} must be > 0")
    return value


def enable(
    path: str | os.PathLike[str] | None = None, hz: float | None = None
) -> Profiler:
    """Start a profiler; :func:`disable` writes the artifact to ``path``.

    Replaces any running profiler (persisting its artifact first).
    Also switches on the tracer's cross-thread span tracking so
    samples can be attributed to open spans.
    """
    global _profiler, _output_path
    disable()
    profiler = Profiler(hz=hz if hz is not None else default_hz())
    trace.set_span_tracking(True)
    profiler.start()
    _profiler = profiler
    _output_path = os.fspath(path) if path is not None else None
    return profiler


def disable() -> ProfileReport | None:
    """Stop the profiler, persist its artifact, return the report.

    A no-op returning ``None`` when no profiler is running.
    """
    global _profiler, _output_path
    profiler = _profiler
    if profiler is None:
        return None
    path = _output_path
    _profiler = None
    _output_path = None
    profiler.stop()
    trace.set_span_tracking(False)
    report = profiler.report()
    if path is not None:
        write_report(report, path)
    return report


def write_report(
    report: ProfileReport, target: str | os.PathLike[str] | TextIO
) -> None:
    """Serialise ``report`` as JSON to a path or open text stream."""
    payload = json.dumps(report.to_json(), sort_keys=True)
    if hasattr(target, "write"):
        target.write(payload + "\n")  # type: ignore[union-attr]
        return
    with open(os.fspath(target), "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")


def read_report(path: str | os.PathLike[str]) -> ProfileReport:
    """Load and validate a persisted profile artifact."""
    fspath = os.fspath(path)
    if not os.path.exists(fspath):
        raise ObservabilityError(f"no profile file at {fspath}")
    try:
        with open(fspath, encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"{fspath} is not valid JSON: {exc}"
        ) from exc
    return ProfileReport.from_json(payload)
