"""Span-based tracing with a JSONL exporter.

One process holds at most one active :class:`Tracer` (module state,
installed by :func:`enable` / removed by :func:`disable`). When no
tracer is installed the module is in its **disabled fast path**:

* :func:`span` returns a :class:`DisabledSpan` that only reads the
  monotonic clock (so callers can still derive ``fit_seconds_``-style
  timings from it) — no ids, no context-var pushes, no I/O;
* :func:`event` returns immediately after one module-flag check;
* nothing is allocated per token and no RNG is touched, so traced and
  untraced fits are bit-identical by construction.

Spans nest through a :class:`contextvars.ContextVar`, which makes
parenthood correct across threads and ``async`` frames without any
global mutable stack. Ids are ``<pid hex>.<counter hex>`` — unique
across the processes of one run without consuming randomness (the
project's RNG discipline reserves all randomness for the models).

Cross-process traces: a worker process records spans into an in-memory
buffer via :func:`capture` and ships the records back with its result;
the parent calls :func:`replay` to graft them onto the live trace (same
``trace_id``, roots re-parented onto the current span).

Records are one JSON object per line; see :mod:`repro.obs.export` for
the schema and validation.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextvars import ContextVar
from types import TracebackType
from typing import Any, Iterable, Iterator, Mapping, TextIO

from contextlib import contextmanager

from repro.errors import ObservabilityError

#: Schema version stamped into every record (``"v"`` key).
TRACE_SCHEMA_VERSION = 1

#: Environment variable naming a trace file; the CLI enables tracing to
#: that path for any command when it is set.
TRACE_ENV = "REPRO_TRACE"

#: Environment variable overriding the per-sweep event sampling
#: interval (every Nth sweep emits an event; default 1 = every sweep).
SWEEP_EVERY_ENV = "REPRO_TRACE_SWEEP_EVERY"

_ids = itertools.count(1)
_current_span: ContextVar[str | None] = ContextVar("repro_obs_span", default=None)

#: When true, open spans also maintain a per-thread name stack readable
#: from *other* threads (the sampling profiler cannot read another
#: thread's context variables). Off by default so the common traced
#: path pays one extra flag check per span, and the disabled path none.
_span_tracking = False
_thread_spans: dict[int, list[str]] = {}


def set_span_tracking(on: bool) -> None:
    """Toggle cross-thread span-name tracking (profiler support).

    Only :mod:`repro.obs.profile` should call this; the per-thread name
    stacks rely on the GIL (each thread mutates only its own list).
    """
    global _span_tracking
    _span_tracking = on
    if not on:
        _thread_spans.clear()


def thread_span_name(ident: int) -> str | None:
    """Innermost open span name on thread ``ident``, if tracking."""
    stack = _thread_spans.get(ident)
    if stack:
        try:
            return stack[-1]
        except IndexError:  # raced with the owning thread's pop
            return None
    return None


def _new_id() -> str:
    """Process-unique span id without consuming any randomness."""
    return f"{os.getpid():x}.{next(_ids):x}"


def _jsonable(value: Any) -> Any:
    """JSON fallback: numpy scalars via ``.item()``, else ``repr``."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return repr(value)


class Tracer:
    """Serialises span/event records to a JSONL sink, thread-safely.

    ``sink`` is either a writable text stream (owned by the caller) or
    ``None``, in which case records accumulate in :attr:`records` (the
    in-memory mode used by worker processes and tests).
    """

    def __init__(
        self,
        sink: TextIO | None = None,
        trace_id: str | None = None,
        sweep_every: int = 1,
    ) -> None:
        if sweep_every < 1:
            raise ObservabilityError("sweep_every must be >= 1")
        self.sink = sink
        self.records: list[dict[str, Any]] = []
        self.trace_id = trace_id or f"{os.getpid():x}-{time.time_ns():x}"
        self.sweep_every = sweep_every
        self.n_emitted = 0
        self._lock = threading.Lock()

    def emit(self, record: dict[str, Any]) -> None:
        record.setdefault("v", TRACE_SCHEMA_VERSION)
        record.setdefault("trace_id", self.trace_id)
        with self._lock:
            self.n_emitted += 1
            if self.sink is None:
                self.records.append(record)
            else:
                self.sink.write(
                    json.dumps(
                        record,
                        sort_keys=True,
                        separators=(",", ":"),
                        default=_jsonable,
                    )
                    + "\n"
                )


#: The module-level flag: ``None`` means tracing is disabled.
_tracer: Tracer | None = None
#: File handle owned by :func:`enable`, closed by :func:`disable`.
_owned_handle: TextIO | None = None


def is_enabled() -> bool:
    """Whether a tracer is installed (the hot-path guard)."""
    return _tracer is not None


def tracer() -> Tracer | None:
    """The active tracer, if any."""
    return _tracer


def current_trace_id() -> str | None:
    """Id of the live trace (``None`` when disabled)."""
    return _tracer.trace_id if _tracer is not None else None


def current_span_id() -> str | None:
    """Id of the innermost open span on this thread, if tracing."""
    return _current_span.get() if _tracer is not None else None


def sweep_interval() -> int:
    """Per-sweep event sampling interval of the active tracer (1 when
    disabled, so guards can multiply without special-casing)."""
    return _tracer.sweep_every if _tracer is not None else 1


def _default_sweep_every() -> int:
    raw = os.environ.get(SWEEP_EVERY_ENV, "1")
    try:
        value = int(raw)
    except ValueError as exc:
        raise ObservabilityError(
            f"{SWEEP_EVERY_ENV} must be an integer, got {raw!r}"
        ) from exc
    if value < 1:
        raise ObservabilityError(f"{SWEEP_EVERY_ENV} must be >= 1")
    return value


def enable(
    target: str | os.PathLike[str] | TextIO | None = None,
    sweep_every: int | None = None,
) -> Tracer:
    """Install a tracer writing to ``target`` and return it.

    ``target`` may be a path (opened for append; JSONL concatenates
    cleanly), an open text stream, or ``None`` for an in-memory tracer.
    Replaces any previously installed tracer (closing a file handle the
    module opened itself).
    """
    global _tracer, _owned_handle
    disable()
    every = sweep_every if sweep_every is not None else _default_sweep_every()
    if target is None or hasattr(target, "write"):
        handle = target
    else:
        handle = open(os.fspath(target), "a", encoding="utf-8")  # noqa: SIM115
        _owned_handle = handle
    _tracer = Tracer(sink=handle, sweep_every=every)  # type: ignore[arg-type]
    return _tracer


def disable() -> None:
    """Remove the active tracer, closing any module-owned file handle."""
    global _tracer, _owned_handle
    _tracer = None
    if _owned_handle is not None:
        try:
            _owned_handle.close()
        finally:
            _owned_handle = None


class Span:
    """An open span: times itself and emits one record on exit."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "start_unix",
        "duration_s",
        "status",
        "_started",
        "_token",
        "_tracked",
    )

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = _new_id()
        self.parent_id: str | None = None
        self.start_unix = 0.0
        self.duration_s = 0.0
        self.status = "ok"
        self._started = 0.0
        self._token: Any = None
        self._tracked = False

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.parent_id = _current_span.get()
        self._token = _current_span.set(self.span_id)
        if _span_tracking:
            _thread_spans.setdefault(
                threading.get_ident(), []
            ).append(self.name)
            self._tracked = True
        self.start_unix = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.duration_s = time.perf_counter() - self._started
        _current_span.reset(self._token)
        if self._tracked:
            stack = _thread_spans.get(threading.get_ident())
            if stack and stack[-1] == self.name:
                stack.pop()
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        active = _tracer
        if active is not None:
            active.emit(
                {
                    "kind": "span",
                    "span_id": self.span_id,
                    "parent_id": self.parent_id,
                    "name": self.name,
                    "start_unix": self.start_unix,
                    "duration_s": self.duration_s,
                    "status": self.status,
                    "pid": os.getpid(),
                    "thread": threading.current_thread().name,
                    "attrs": self.attrs,
                }
            )


class DisabledSpan:
    """The disabled fast path: a stopwatch and nothing else."""

    __slots__ = ("duration_s", "_started")

    #: Disabled spans have no identity; manifests store ``None``.
    span_id: str | None = None
    name = ""
    status = "ok"

    def __init__(self) -> None:
        self.duration_s = 0.0
        self._started = 0.0

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "DisabledSpan":
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.duration_s = time.perf_counter() - self._started


def span(name: str, **attrs: Any) -> Span | DisabledSpan:
    """Open a span named ``name``; use as a context manager.

    With tracing disabled this returns a :class:`DisabledSpan`, which
    still measures ``duration_s`` (two monotonic-clock reads) so call
    sites can keep deriving their timing attributes from it.
    """
    if _tracer is None:
        return DisabledSpan()
    return Span(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit a point-in-time event under the current span.

    A no-op (single flag check) when tracing is disabled. Hot loops
    should additionally guard with :func:`is_enabled` so the disabled
    path allocates nothing at all.
    """
    active = _tracer
    if active is None:
        return
    active.emit(
        {
            "kind": "event",
            "span_id": _current_span.get(),
            "name": name,
            "time_unix": time.time(),
            "pid": os.getpid(),
            "attrs": attrs,
        }
    )


@contextmanager
def capture(sweep_every: int | None = None) -> Iterator[list[dict[str, Any]]]:
    """Record spans/events into a list instead of the installed sink.

    Used by worker processes (ship records back with the task result —
    see :func:`replay`) and by tests. The previous tracer, if any, is
    restored on exit.
    """
    global _tracer
    previous = _tracer
    every = (
        sweep_every
        if sweep_every is not None
        else (previous.sweep_every if previous is not None else _default_sweep_every())
    )
    buffer = Tracer(sink=None, sweep_every=every)
    _tracer = buffer
    try:
        yield buffer.records
    finally:
        _tracer = previous


def replay(
    records: Iterable[Mapping[str, Any]], parent_id: str | None = None
) -> int:
    """Graft captured records from another process onto the live trace.

    Rewrites each record's ``trace_id`` to the current trace and
    re-parents root spans (and orphan events) onto ``parent_id`` (the
    caller's current span by default). Returns the number of records
    emitted; a no-op returning 0 when tracing is disabled.
    """
    active = _tracer
    if active is None:
        return 0
    parent = parent_id if parent_id is not None else _current_span.get()
    count = 0
    for record in records:
        merged = dict(record)
        merged["trace_id"] = active.trace_id
        if merged.get("kind") == "span" and merged.get("parent_id") is None:
            merged["parent_id"] = parent
        elif merged.get("kind") == "event" and merged.get("span_id") is None:
            merged["span_id"] = parent
        merged["forwarded"] = True
        active.emit(merged)
        count += 1
    return count
