"""Registry of canonical span, event and metric names.

Every observability name the codebase emits is declared here, and the
OBS001 lint rule checks string literals passed to ``trace.span(...)``,
``trace.event(...)`` and ``registry.counter|gauge|histogram(...)``
against these sets — so a typo'd ``cache.hti`` counter fails lint
instead of silently recording into a parallel universe nobody graphs.

Regenerate after adding instrumentation with::

    python -m repro.analysis --dump-obs-names src/repro

which prints the literal name sets found in the tree, ready to paste.
Names built dynamically (e.g. per-stage spans named after
``stage.name``, per-kernel ``kernel.sweep_seconds.<name>`` histograms)
are invisible to the scanner; keep them listed here by hand — in both
the main sets *and* the ``DYNAMIC_*`` sets — so dashboards and the
trace summary have one source of truth. CI runs
``python -m repro.analysis --check-obs-names src/repro`` to verify the
scanner-visible names exactly match this registry minus the dynamic
sets, so new instrumentation cannot silently bypass OBS001.
"""

from __future__ import annotations

#: Span names, including the five pipeline stages (emitted dynamically
#: as ``trace.span(stage.name, kind="stage")``).
SPANS: frozenset[str] = frozenset(
    {
        "build-dataset",
        "build-linker",
        "collapsed-model.fit",
        "fit-model",
        "gel-filter",
        "joint-model.fit",
        "joint-model.restart",
        "lda.fit",
        "run-pipeline",
        "run-tasks",
        "serve.batch",
        "serve.fold-in",
        "serve.request",
        "synth-corpus",
    }
)

#: Point-in-time event names.
EVENTS: frozenset[str] = frozenset(
    {
        "adlda.merge",
        "executor.fallback",
        "sweep",
    }
)

#: Counter, gauge and histogram names. Sharded pipeline stages also
#: emit spans named after ``stage.name`` ("shard-dataset-0003", ...);
#: those are parameterised by shard index and stay out of SPANS the
#: same way dynamic stage spans always have.
METRICS: frozenset[str] = frozenset(
    {
        "cache.bytes_read",
        "cache.bytes_written",
        "cache.chunk_bytes_read",
        "cache.chunk_bytes_written",
        "cache.chunks_read",
        "cache.chunks_written",
        "cache.hit",
        "cache.miss",
        "executor.fallback",
        "executor.task_run_seconds",
        "executor.task_wait_seconds",
        "adlda.merge_staleness",
        "adlda.shard_imbalance",
        "executor.batch_max_wait_seconds",
        "kernel.alias_refresh",
        "kernel.sweep_seconds.adlda",
        "kernel.sweep_seconds.alias",
        "kernel.sweep_seconds.dense",
        "kernel.sweep_seconds.legacy",
        "kernel.sweep_seconds.sparse",
        "pipeline.shards",
        "pipeline.stage_seconds",
        "sampler.adlda_merges",
        "sampler.kernel_selected",
        "sampler.sweep_log_likelihood",
        "sampler.sweep_seconds",
        "sampler.sweeps",
        "sampler.tokens_per_sec",
        "serve.batch_size",
        "serve.errors",
        "serve.latency_seconds",
        "serve.queue_depth",
        "serve.requests",
    }
)


#: Span names emitted with a computed first argument (the five pipeline
#: stage spans are ``trace.span(stage.name, kind="stage")``). The
#: OBS001 literal scanner cannot see these; the CI drift check subtracts
#: them before comparing against a fresh scan.
DYNAMIC_SPANS: frozenset[str] = frozenset(
    {
        "build-dataset",
        "build-linker",
        "fit-model",
        "gel-filter",
        "synth-corpus",
    }
)

#: Event names emitted with a computed first argument (none today).
DYNAMIC_EVENTS: frozenset[str] = frozenset()

#: Metric names emitted with a computed first argument (the per-kernel
#: sweep-time histograms are ``f"kernel.sweep_seconds.{kernel}"``).
DYNAMIC_METRICS: frozenset[str] = frozenset(
    {
        "kernel.sweep_seconds.adlda",
        "kernel.sweep_seconds.alias",
        "kernel.sweep_seconds.dense",
        "kernel.sweep_seconds.legacy",
        "kernel.sweep_seconds.sparse",
    }
)

assert DYNAMIC_SPANS <= SPANS, "dynamic spans must be registered in SPANS"
assert DYNAMIC_EVENTS <= EVENTS, "dynamic events must be registered"
assert DYNAMIC_METRICS <= METRICS, "dynamic metrics must be registered"


def all_names() -> dict[str, frozenset[str]]:
    """Kind → registered names, keyed the way OBS001 classifies calls."""
    return {"span": SPANS, "event": EVENTS, "metric": METRICS}


def scanner_visible_names() -> dict[str, frozenset[str]]:
    """Kind → names a literal scan of the tree should find exactly.

    The registry minus the dynamically-constructed names; the CI drift
    check compares this against ``--dump-obs-names`` output.
    """
    return {
        "span": SPANS - DYNAMIC_SPANS,
        "event": EVENTS - DYNAMIC_EVENTS,
        "metric": METRICS - DYNAMIC_METRICS,
    }
