"""Cross-run performance regression detection over bench trajectories.

``BENCH_sampler.json`` and ``BENCH_serve.json`` are append-only
trajectories: every bench run appends one row per measured cell, tagged
with the commit it ran at. The committed floor files
(``benchmarks/sampler_floor.json``, ``benchmarks/serve_floor.json``)
ratchet the *minimum acceptable* throughput per cell. This module
closes the loop: ``repro bench check`` compares a **robust statistic**
of the recent trajectory — the median of the last N rows per cell —
against ``tolerance × floor``, so a single noisy row neither fails CI
nor masks a real regression that persists across runs.

Cells with no floor entry (e.g. ``adlda`` rows, whose throughput
depends on shard count) are skipped; cells with a floor but no
trajectory rows are reported as regressions too — a silently vanished
bench is itself a regression of coverage.
"""

from __future__ import annotations

import json
import os
from statistics import median
from typing import Any, Mapping, Sequence

from repro.errors import ObservabilityError

#: Rows per cell fed into the median (most recent first).
DEFAULT_RECENT = 5

#: Fallback throughput tolerance when a floor file names none.
DEFAULT_TOLERANCE = 0.7


class Regression:
    """One detected regression (or coverage gap) in a trajectory."""

    __slots__ = ("bench", "cell", "observed", "threshold", "n_rows", "detail")

    def __init__(
        self,
        bench: str,
        cell: str,
        observed: float | None,
        threshold: float,
        n_rows: int,
        detail: str,
    ) -> None:
        self.bench = bench
        self.cell = cell
        self.observed = observed
        self.threshold = threshold
        self.n_rows = n_rows
        self.detail = detail

    def __repr__(self) -> str:
        return f"Regression({self.bench}/{self.cell}: {self.detail})"

    def message(self) -> str:
        return f"{self.bench} {self.cell}: {self.detail}"


def _load_json(path: str | os.PathLike[str], what: str) -> Any:
    fspath = os.fspath(path)
    if not os.path.exists(fspath):
        raise ObservabilityError(f"no {what} file at {fspath}")
    try:
        with open(fspath, encoding="utf-8") as handle:
            return json.load(handle)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"{fspath} is not valid JSON: {exc}"
        ) from exc


def _recent_median(values: Sequence[float], recent: int) -> float:
    tail = list(values)[-recent:]
    return float(median(tail))


def check_sampler(
    rows: Sequence[Mapping[str, Any]],
    floor_payload: Mapping[str, Any],
    recent: int = DEFAULT_RECENT,
) -> list[Regression]:
    """Check the sampler trajectory against per-(kernel, K) floors.

    Rows are matched to a floor cell by ``kernel`` and ``n_topics`` on
    the ``full`` preset (the preset the floors were ratcheted on);
    kernels without a floor entry are ignored.
    """
    if recent < 1:
        raise ObservabilityError("recent must be >= 1")
    tolerance = float(floor_payload.get("tolerance", DEFAULT_TOLERANCE))
    floors = floor_payload.get("floors")
    if not isinstance(floors, Mapping):
        raise ObservabilityError("sampler floor file needs a floors map")
    findings: list[Regression] = []
    for kernel in sorted(floors):
        cells = floors[kernel]
        if not isinstance(cells, Mapping):
            raise ObservabilityError(
                f"sampler floors for kernel {kernel!r} must be a map"
            )
        for k_str in sorted(cells, key=lambda s: int(s)):
            floor = float(cells[k_str])
            threshold = tolerance * floor
            k = int(k_str)
            cell = f"kernel={kernel} K={k}"
            values = [
                float(row["tokens_per_sec"])
                for row in rows
                if row.get("preset") == "full"
                and row.get("kernel") == kernel
                and int(row.get("n_topics", -1)) == k
                and "tokens_per_sec" in row
            ]
            if not values:
                findings.append(
                    Regression(
                        "sampler",
                        cell,
                        None,
                        threshold,
                        0,
                        "floor committed but no trajectory rows",
                    )
                )
                continue
            observed = _recent_median(values, recent)
            if observed < threshold:
                n = min(recent, len(values))
                findings.append(
                    Regression(
                        "sampler",
                        cell,
                        observed,
                        threshold,
                        n,
                        f"median of last {n} rows "
                        f"{observed:.0f} tokens/sec < "
                        f"{threshold:.0f} ({tolerance:g} x floor "
                        f"{floor:.0f})",
                    )
                )
    return findings


def check_serve(
    rows: Sequence[Mapping[str, Any]],
    floor_payload: Mapping[str, Any],
    recent: int = DEFAULT_RECENT,
) -> list[Regression]:
    """Check the serve trajectory against the requests/sec floor.

    Every preset present in the trajectory is held to the same floor
    (the floor is a load-bench minimum, not a preset-specific target).
    """
    if recent < 1:
        raise ObservabilityError("recent must be >= 1")
    floor_raw = floor_payload.get("requests_per_sec")
    if floor_raw is None:
        raise ObservabilityError(
            "serve floor file needs a requests_per_sec entry"
        )
    floor = float(floor_raw)
    tolerance = float(floor_payload.get("tolerance", DEFAULT_TOLERANCE))
    threshold = tolerance * floor
    presets = sorted(
        {str(row.get("preset", "?")) for row in rows}
    )
    findings: list[Regression] = []
    if not presets:
        findings.append(
            Regression(
                "serve",
                "preset=*",
                None,
                threshold,
                0,
                "floor committed but no trajectory rows",
            )
        )
        return findings
    for preset in presets:
        values = [
            float(row["requests_per_sec"])
            for row in rows
            if str(row.get("preset", "?")) == preset
            and "requests_per_sec" in row
        ]
        cell = f"preset={preset}"
        if not values:
            findings.append(
                Regression(
                    "serve",
                    cell,
                    None,
                    threshold,
                    0,
                    "rows present but none carry requests_per_sec",
                )
            )
            continue
        observed = _recent_median(values, recent)
        if observed < threshold:
            n = min(recent, len(values))
            findings.append(
                Regression(
                    "serve",
                    cell,
                    observed,
                    threshold,
                    n,
                    f"median of last {n} rows {observed:.1f} req/sec < "
                    f"{threshold:.1f} ({tolerance:g} x floor {floor:.1f})",
                )
            )
    return findings


def _load_rows(path: str | os.PathLike[str], what: str) -> list[dict[str, Any]]:
    payload = _load_json(path, what)
    if not isinstance(payload, list):
        raise ObservabilityError(
            f"{os.fspath(path)} must hold a JSON list of bench rows"
        )
    return payload


def check_files(
    sampler_path: str | os.PathLike[str] | None = None,
    sampler_floor_path: str | os.PathLike[str] | None = None,
    serve_path: str | os.PathLike[str] | None = None,
    serve_floor_path: str | os.PathLike[str] | None = None,
    recent: int = DEFAULT_RECENT,
) -> list[Regression]:
    """Run every check whose trajectory+floor file pair was given."""
    findings: list[Regression] = []
    if sampler_path is not None and sampler_floor_path is not None:
        findings.extend(
            check_sampler(
                _load_rows(sampler_path, "sampler trajectory"),
                _load_json(sampler_floor_path, "sampler floor"),
                recent=recent,
            )
        )
    if serve_path is not None and serve_floor_path is not None:
        findings.extend(
            check_serve(
                _load_rows(serve_path, "serve trajectory"),
                _load_json(serve_floor_path, "serve floor"),
                recent=recent,
            )
        )
    return findings
