"""Observability: structured tracing, metrics and unified logging.

Zero-dependency substrate the rest of the package reports through:

* :mod:`repro.obs.trace` — span-based tracer (context-manager spans,
  parent/child nesting via context vars, per-sweep events, JSONL
  exporter, cross-process capture/replay) with a strictly no-op fast
  path when disabled;
* :mod:`repro.obs.metrics` — process-local registry of counters,
  gauges and fixed-log-bucket histograms fed from the cache, executor
  and sampler hot paths;
* :mod:`repro.obs.log` — the single ``repro`` root logger and the
  idempotent CLI handler configuration;
* :mod:`repro.obs.export` — trace-file schema, reading and validation;
* :mod:`repro.obs.summary` — the ``repro trace summary|tree`` views;
* :mod:`repro.obs.profile` — wall-clock sampling profiler (daemon
  thread over ``sys._current_frames``, folded stacks keyed to the
  active span), strictly no-op when disabled;
* :mod:`repro.obs.series` — periodic registry sampling into bounded
  ring-buffer time-series artifacts (p50/p99-over-time views);
* :mod:`repro.obs.prom` — Prometheus text exposition of the registry
  (``/metricz?format=prometheus``) plus a minimal parser;
* :mod:`repro.obs.regress` — cross-run perf regression detection over
  the committed ``BENCH_*.json`` trajectories (``repro bench check``).

Enable tracing with ``repro run --trace out.jsonl``, the
``REPRO_TRACE`` environment variable, or programmatically::

    from repro.obs import trace
    trace.enable("out.jsonl")
    ...
    trace.disable()
"""

from repro.obs import metrics, profile, prom, regress, series, trace
from repro.obs.export import read_trace, validate_record, validate_trace
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.summary import build_forest, render_tree, summarise
from repro.obs.trace import (
    TRACE_ENV,
    TRACE_SCHEMA_VERSION,
    capture,
    disable,
    enable,
    event,
    is_enabled,
    replay,
    span,
)

__all__ = [
    "TRACE_ENV",
    "TRACE_SCHEMA_VERSION",
    "MetricsRegistry",
    "build_forest",
    "capture",
    "configure_logging",
    "disable",
    "enable",
    "event",
    "get_logger",
    "is_enabled",
    "metrics",
    "profile",
    "prom",
    "read_trace",
    "regress",
    "series",
    "registry",
    "render_tree",
    "replay",
    "span",
    "summarise",
    "trace",
    "validate_record",
    "validate_trace",
]
