"""Prometheus text exposition (and a minimal parser) for the registry.

:func:`render` turns a :meth:`MetricsRegistry.snapshot` mapping into
Prometheus text-format 0.0.4: dotted metric names are mangled to
underscore form, counters gain the conventional ``_total`` suffix,
and histograms expand into cumulative ``_bucket{le="..."}`` series
plus ``_sum`` / ``_count`` (with the mandatory ``+Inf`` bucket).
Optional base labels (e.g. the serving model fingerprint) are attached
to every sample with spec-compliant value escaping.

:func:`parse` is the inverse — deliberately minimal, implemented only
so tests (and ``repro bench check``-style tooling) can round-trip the
exposition without a prometheus client dependency. It understands the
subset :func:`render` emits: ``# HELP`` / ``# TYPE`` comments, sample
lines with optional labels, and escaped label values.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import ObservabilityError

#: Content type of the text exposition format (0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def mangle(name: str) -> str:
    """Dotted registry name → Prometheus metric name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    mangled = "".join(out)
    if not mangled or mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out: list[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        if nxt == "n":
            out.append("\n")
        elif nxt in ("\\", '"'):
            out.append(nxt)
        else:
            out.append(ch + nxt)
    return "".join(out)


def format_value(value: float) -> str:
    """Float formatting matching prometheus conventions."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _merged(
    base: Mapping[str, str], extra: Mapping[str, str]
) -> dict[str, str]:
    merged = dict(base)
    merged.update(extra)
    return merged


def render(
    snapshot: Mapping[str, Mapping[str, Any]],
    labels: Mapping[str, str] | None = None,
) -> str:
    """Render a registry snapshot as Prometheus exposition text.

    ``snapshot`` is the output of
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot`; ``labels`` are
    attached to every emitted sample. Gauges whose value was never set
    are skipped (Prometheus has no notion of an unset gauge).
    """
    base = dict(labels or {})
    lines: list[str] = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        kind = snap.get("kind")
        metric = mangle(name)
        if kind == "counter":
            metric += "_total"
            lines.append(f"# HELP {metric} repro counter {name}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(
                f"{metric}{_labels_text(base)} "
                f"{format_value(float(snap.get('value') or 0.0))}"
            )
        elif kind == "gauge":
            value = snap.get("value")
            if value is None:
                continue
            lines.append(f"# HELP {metric} repro gauge {name}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(
                f"{metric}{_labels_text(base)} "
                f"{format_value(float(value))}"
            )
        elif kind == "histogram":
            lines.append(f"# HELP {metric} repro histogram {name}")
            lines.append(f"# TYPE {metric} histogram")
            bounds = [float(b) for b in snap.get("bounds") or []]
            counts = [int(c) for c in snap.get("bucket_counts") or []]
            cumulative = 0
            for bound, count in zip(bounds, counts):
                cumulative += count
                bucket_labels = _merged(base, {"le": format_value(bound)})
                lines.append(
                    f"{metric}_bucket{_labels_text(bucket_labels)} "
                    f"{cumulative}"
                )
            total_count = int(snap.get("count") or 0)
            inf_labels = _merged(base, {"le": "+Inf"})
            lines.append(
                f"{metric}_bucket{_labels_text(inf_labels)} {total_count}"
            )
            lines.append(
                f"{metric}_sum{_labels_text(base)} "
                f"{format_value(float(snap.get('total') or 0.0))}"
            )
            lines.append(
                f"{metric}_count{_labels_text(base)} {total_count}"
            )
        else:
            raise ObservabilityError(
                f"metric {name!r} has unknown kind {kind!r}"
            )
    return "\n".join(lines) + "\n"


class Sample:
    """One parsed exposition sample line."""

    __slots__ = ("name", "labels", "value")

    def __init__(
        self, name: str, labels: dict[str, str], value: float
    ) -> None:
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:
        return f"Sample({self.name!r}, {self.labels!r}, {self.value!r})"


def _parse_labels(text: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    n = len(text)
    while i < n:
        try:
            j = text.index("=", i)
        except ValueError as exc:
            raise ObservabilityError(
                f"exposition line {lineno}: label without '='"
            ) from exc
        key = text[i:j].strip()
        if not key:
            raise ObservabilityError(
                f"exposition line {lineno}: empty label name"
            )
        i = j + 1
        if i >= n or text[i] != '"':
            raise ObservabilityError(
                f"exposition line {lineno}: label value must be quoted"
            )
        i += 1
        raw: list[str] = []
        while i < n:
            ch = text[i]
            if ch == "\\" and i + 1 < n:
                raw.append(text[i : i + 2])
                i += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            i += 1
        else:
            raise ObservabilityError(
                f"exposition line {lineno}: unterminated label value"
            )
        labels[key] = unescape_label_value("".join(raw))
        i += 1  # past the closing quote
        if i < n and text[i] == ",":
            i += 1
        i = i + len(text[i:]) - len(text[i:].lstrip())
    return labels


def _parse_value(text: str) -> float:
    stripped = text.strip()
    if stripped == "+Inf":
        return float("inf")
    if stripped == "-Inf":
        return float("-inf")
    if stripped == "NaN":
        return float("nan")
    return float(stripped)


def iter_samples(text: str) -> Iterator[Sample]:
    """Yield :class:`Sample` rows from exposition text.

    Raises :class:`~repro.errors.ObservabilityError` on malformed
    lines so tests can assert the endpoint output parses cleanly.
    """
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        brace = stripped.find("{")
        if brace >= 0:
            close = stripped.rfind("}")
            if close < brace:
                raise ObservabilityError(
                    f"exposition line {lineno}: unbalanced braces"
                )
            name = stripped[:brace]
            labels = _parse_labels(stripped[brace + 1 : close], lineno)
            value_text = stripped[close + 1 :]
        else:
            parts = stripped.split(None, 1)
            if len(parts) != 2:
                raise ObservabilityError(
                    f"exposition line {lineno}: expected 'name value'"
                )
            name, value_text = parts
            labels = {}
        if not name:
            raise ObservabilityError(
                f"exposition line {lineno}: empty metric name"
            )
        try:
            value = _parse_value(value_text)
        except ValueError as exc:
            raise ObservabilityError(
                f"exposition line {lineno}: bad value {value_text!r}"
            ) from exc
        yield Sample(name, labels, value)


def parse(text: str) -> list[Sample]:
    """Parse exposition text into a list of samples."""
    return list(iter_samples(text))
