"""Unified logging for the ``repro`` package.

Every module logs through a child of the single ``repro`` root logger
(:func:`get_logger`), and the CLI configures that root exactly once per
invocation via :func:`configure` — which is idempotent, so repeated
``main()`` calls in one process (tests, notebooks) never stack
duplicate handlers. Library code never installs handlers itself.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

#: The root logger name every repro module hangs off.
ROOT = "repro"

#: Accepted ``--log-level`` names, mapped to stdlib levels.
LEVELS: dict[str, int] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: Attribute marking handlers installed by :func:`configure`.
_MARKER = "_repro_obs_handler"


def get_logger(name: str = ROOT) -> logging.Logger:
    """A logger under the ``repro`` root (prefix added if missing)."""
    if name != ROOT and not name.startswith(ROOT + "."):
        name = f"{ROOT}.{name}"
    return logging.getLogger(name)


def resolve_level(level: int | str | None, verbosity: int = 0) -> int:
    """Map a ``--log-level`` name and/or ``-v`` count to a stdlib level.

    An explicit name wins; otherwise ``-v`` means INFO and ``-vv`` (or
    more) DEBUG, defaulting to WARNING.
    """
    if isinstance(level, int):
        return level
    if level is not None:
        try:
            return LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
            ) from None
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    return logging.WARNING


def configure(
    level: int | str | None = None,
    verbosity: int = 0,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Install (or replace) the single ``repro`` root handler.

    Idempotent: any handler this function previously installed is
    removed first, so calling it once per CLI invocation always leaves
    exactly one handler on the root logger.
    """
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        if getattr(handler, _MARKER, False):
            root.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    setattr(handler, _MARKER, True)
    root.addHandler(handler)
    root.setLevel(resolve_level(level, verbosity))
    # The repro root owns its output; propagating further would print
    # every record twice in applications that configure the global root.
    root.propagate = False
    return root
