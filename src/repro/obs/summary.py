"""Trace rendering: the ``repro trace summary|tree`` views.

Both views consume the validated record lists of
:mod:`repro.obs.export`. ``summary`` aggregates spans by name (count,
total/mean seconds) and folds per-sweep sampler events into a
throughput/likelihood digest; ``tree`` renders the span forest with
per-span durations and attached event counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence


@dataclass
class SpanNode:
    """One span with its children and directly attached events."""

    record: Mapping[str, Any]
    children: list["SpanNode"] = field(default_factory=list)
    events: list[Mapping[str, Any]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.record["name"])

    @property
    def duration_s(self) -> float:
        return float(self.record["duration_s"])


def build_forest(records: Iterable[Mapping[str, Any]]) -> list[SpanNode]:
    """Assemble the span forest (roots in file order) from records.

    Spans whose parent never closed (crash mid-trace) and events whose
    span is unknown are promoted to the root level rather than dropped.
    """
    nodes: dict[str, SpanNode] = {}
    order: list[SpanNode] = []
    orphan_events: list[Mapping[str, Any]] = []
    for record in records:
        if record.get("kind") == "span":
            node = SpanNode(record)
            nodes[str(record["span_id"])] = node
            order.append(node)
    roots: list[SpanNode] = []
    for node in order:
        parent = node.record.get("parent_id")
        if parent is not None and str(parent) in nodes:
            nodes[str(parent)].children.append(node)
        else:
            roots.append(node)
    for record in records:
        if record.get("kind") != "event":
            continue
        owner = record.get("span_id")
        if owner is not None and str(owner) in nodes:
            nodes[str(owner)].events.append(record)
        else:
            orphan_events.append(record)
    if orphan_events:
        synthetic: Mapping[str, Any] = {
            "name": "(unparented events)",
            "span_id": "",
            "duration_s": 0.0,
            "attrs": {},
        }
        roots.append(SpanNode(synthetic, events=orphan_events))
    return roots


def _sweep_digest(records: Sequence[Mapping[str, Any]]) -> list[str]:
    """Per-model digest of the ``sweep`` events in a trace."""
    by_model: dict[str, list[Mapping[str, Any]]] = {}
    for record in records:
        if record.get("kind") == "event" and record.get("name") == "sweep":
            attrs = record.get("attrs", {})
            by_model.setdefault(str(attrs.get("model", "?")), []).append(attrs)
    lines = []
    for model, sweeps in sorted(by_model.items()):
        tps = [
            float(s["tokens_per_sec"])
            for s in sweeps
            if isinstance(s.get("tokens_per_sec"), (int, float))
        ]
        lls = [
            float(s["log_likelihood"])
            for s in sweeps
            if isinstance(s.get("log_likelihood"), (int, float))
        ]
        parts = [f"{model}: {len(sweeps)} sweep events"]
        if tps:
            parts.append(
                f"tokens/sec mean {sum(tps) / len(tps):,.0f} "
                f"(min {min(tps):,.0f}, max {max(tps):,.0f})"
            )
        if lls:
            parts.append(f"log-likelihood {lls[0]:,.1f} -> {lls[-1]:,.1f}")
        lines.append("  " + "; ".join(parts))
    return lines


def summarise(records: Sequence[Mapping[str, Any]]) -> str:
    """The ``repro trace summary`` view: per-span-name time breakdown."""
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]
    traces = {str(r.get("trace_id")) for r in records}
    lines = [
        f"{len(traces)} trace(s), {len(spans)} spans, {len(events)} events"
    ]
    if not spans:
        return "\n".join(lines)
    stats: dict[str, list[float]] = {}
    names_in_order: list[str] = []
    for record in spans:
        name = str(record["name"])
        if name not in stats:
            stats[name] = []
            names_in_order.append(name)
        stats[name].append(float(record["duration_s"]))
    lines.append(f"{'span':<28} {'count':>5} {'total_s':>9} {'mean_s':>9}")
    for name in names_in_order:
        durations = stats[name]
        lines.append(
            f"{name:<28} {len(durations):>5} {sum(durations):>9.3f} "
            f"{sum(durations) / len(durations):>9.3f}"
        )
    digest = _sweep_digest(records)
    if digest:
        lines.append("sampler sweeps:")
        lines.extend(digest)
    return "\n".join(lines)


def render_tree(records: Sequence[Mapping[str, Any]]) -> str:
    """The ``repro trace tree`` view: the indented span forest."""
    roots = build_forest(records)
    if not roots:
        return "(empty trace)"
    lines: list[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        indent = "  " * depth
        suffix = ""
        if node.events:
            suffix += f"  [{len(node.events)} events]"
        status = node.record.get("status", "ok")
        if status != "ok":
            suffix += f"  !{status}"
        forwarded = "  (forwarded)" if node.record.get("forwarded") else ""
        lines.append(
            f"{indent}{node.name:<{max(30 - len(indent), 1)}} "
            f"{node.duration_s:>9.3f}s{suffix}{forwarded}"
        )
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)
