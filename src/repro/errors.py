"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while still being
able to discriminate failure modes when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class UnitParseError(ReproError, ValueError):
    """A quantity string could not be parsed into a :class:`~repro.units.quantity.Quantity`."""

    def __init__(self, text: str, reason: str = "") -> None:
        self.text = text
        self.reason = reason
        detail = f": {reason}" if reason else ""
        super().__init__(f"cannot parse quantity {text!r}{detail}")


class UnitConversionError(ReproError, ValueError):
    """A quantity could not be converted to grams (e.g. unknown density)."""


class UnknownIngredientError(ReproError, KeyError):
    """An ingredient name is absent from the catalogue or gravity table."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"unknown ingredient: {name!r}")


class UnknownTermError(ReproError, KeyError):
    """A texture term is not present in the dictionary."""

    def __init__(self, surface: str) -> None:
        self.surface = surface
        super().__init__(f"unknown texture term: {surface!r}")


class DictionaryError(ReproError):
    """The texture-term dictionary failed an internal consistency check."""


class CorpusError(ReproError):
    """A recipe or corpus-level invariant was violated."""


class StoreError(ReproError):
    """The recipe store was used incorrectly (duplicate ids, missing ids…)."""


class ModelError(ReproError):
    """A topic model was configured or driven incorrectly."""


class NotFittedError(ModelError, RuntimeError):
    """A model method requiring a completed fit was called before ``fit``."""

    def __init__(self, what: str = "model") -> None:
        super().__init__(f"{what} is not fitted; call fit() first")


class ConvergenceError(ModelError, RuntimeError):
    """An iterative procedure failed to converge within its budget."""


class LinkageError(ReproError):
    """Topic-to-study linkage could not be established."""


class RheologyError(ReproError):
    """A rheological simulation or conversion failed."""


class ExperimentError(ReproError):
    """An experiment pipeline was configured inconsistently."""


class ArtifactError(ReproError):
    """The on-disk artifact store hit a corrupt, missing or foreign entry."""


class ParallelError(ReproError, RuntimeError):
    """A parallel backend was misconfigured or failed irrecoverably."""


class ObservabilityError(ReproError):
    """The tracing/metrics layer was misused or fed a malformed trace."""


class ServeError(ReproError):
    """The inference service was misconfigured or cannot serve."""


class BadRequestError(ServeError, ValueError):
    """A serving request body was malformed or semantically invalid."""
