"""Search recipes by desired texture — the paper's end-user goal.

Section I: the point of estimating texture is "enabling [users] to find
their favorite recipes in more suitable manner". Once the joint model is
fitted, every recipe carries a topic distribution θ_d and every topic a
term distribution φ_k, so the probability that recipe d *feels like*
query term w is simply ``Σ_k θ_dk · φ_kw`` — even when the recipe's own
description never uses the word.

:class:`TextureSearch` ranks a fitted dataset's recipes against a bag of
query terms this way, with an optional boost for recipes whose authors
literally wrote a query term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError, UnknownTermError


@dataclass(frozen=True)
class SearchHit:
    """One ranked search result."""

    recipe_id: str
    score: float
    topic: int
    mentions_query: bool


class TextureSearch:
    """Texture-term search over a fitted pipeline result."""

    def __init__(self, result, mention_boost: float = 1.5) -> None:
        model = result.model
        if getattr(model, "theta_", None) is None:
            raise ModelError("search needs a fitted model")
        self.theta = np.asarray(model.theta_)
        self.phi = np.asarray(model.phi_)
        self.vocabulary: tuple[str, ...] = tuple(result.vocabulary)
        self._term_ids = {s: i for i, s in enumerate(self.vocabulary)}
        self.recipe_ids: tuple[str, ...] = tuple(result.dataset.recipe_ids)
        self._term_counts = [f.term_counts for f in result.dataset.features]
        self._assignments = model.topic_assignments()
        if mention_boost < 1.0:
            raise ModelError("mention_boost must be >= 1")
        self.mention_boost = mention_boost

    # -- queries ------------------------------------------------------------

    def term_probability(self, surface: str) -> np.ndarray:
        """p(term | recipe) = Σ_k θ_dk φ_kw for every recipe."""
        term_id = self._term_ids.get(surface)
        if term_id is None:
            raise UnknownTermError(surface)
        return self.theta @ self.phi[:, term_id]

    def query(self, terms, top: int = 10) -> list[SearchHit]:
        """Rank recipes by joint probability of all query ``terms``.

        Unknown terms (never observed in the dataset) raise
        :class:`~repro.errors.UnknownTermError` — the caller can check
        membership against :attr:`vocabulary` first.
        """
        terms = list(terms)
        if not terms:
            raise ModelError("empty query")
        log_scores = np.zeros(len(self.recipe_ids))
        for surface in terms:
            log_scores += np.log(
                np.maximum(self.term_probability(surface), 1e-12)
            )
        mentions = np.array(
            [
                any(t in counts for t in terms)
                for counts in self._term_counts
            ]
        )
        log_scores += np.log(self.mention_boost) * mentions  # repro: noqa[NUM002] - mention_boost >= 1 validated in __init__
        order = np.argsort(log_scores)[::-1][:top]
        return [
            SearchHit(
                recipe_id=self.recipe_ids[i],
                score=float(np.exp(log_scores[i])),
                topic=int(self._assignments[i]),
                mentions_query=bool(mentions[i]),
            )
            for i in order
        ]

    def similar_recipes(self, recipe_id: str, top: int = 10) -> list[SearchHit]:
        """Recipes with the most similar topic distribution (cosine θ)."""
        try:
            index = self.recipe_ids.index(recipe_id)
        except ValueError:
            raise ModelError(f"unknown recipe id {recipe_id!r}") from None
        query = self.theta[index]
        norms = np.linalg.norm(self.theta, axis=1) * np.linalg.norm(query)
        scores = self.theta @ query / np.maximum(norms, 1e-12)
        scores[index] = -np.inf
        order = np.argsort(scores)[::-1][:top]
        return [
            SearchHit(
                recipe_id=self.recipe_ids[i],
                score=float(scores[i]),
                topic=int(self._assignments[i]),
                mentions_query=False,
            )
            for i in order
        ]
