"""Convergence diagnostics for the Gibbs samplers.

The paper runs Gibbs "until convergence" without further detail; these
helpers make that operational: a likelihood-trace summary, a plateau
check usable as a stopping heuristic, and a Geweke-style z-score
comparing early and late segments of the post-burn-in trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConvergenceError


@dataclass(frozen=True)
class TraceSummary:
    """Summary statistics of a log-likelihood trace."""

    first: float
    last: float
    best: float
    improved: bool          # last better than first
    plateau_fraction: float  # share of the trace within tolerance of best
    geweke_z: float          # |z| < 2 suggests the tail is stationary
    spread: float = 0.0      # dynamic range (max - min) of the trace

    @property
    def converged(self) -> bool:
        """Heuristic convergence: improved, long plateau, stationary tail.

        A zero-spread (constant) trace is treated as converged
        explicitly: it cannot "improve" (``last > first`` is false) yet
        it sits entirely on its plateau — the chain has nowhere left to
        go, which is exactly what the improvement test exists to detect.
        """
        if self.spread <= 0.0:
            return True
        return self.improved and self.plateau_fraction > 0.2 and abs(self.geweke_z) < 3.0


def summarise_trace(
    trace: Sequence[float], plateau_tolerance: float = 0.02
) -> TraceSummary:
    """Summarise a log-likelihood trace.

    ``plateau_tolerance`` is relative to the trace's dynamic range: a
    sweep counts as "on the plateau" when it is within that fraction of
    the best value.
    """
    values = np.asarray(list(trace), dtype=float)
    if values.size < 4:
        raise ConvergenceError("trace too short to summarise")
    if not np.all(np.isfinite(values)):
        raise ConvergenceError("trace contains non-finite values")
    best = float(values.max())
    spread = float(values.max() - values.min())
    if spread <= 0.0:
        plateau = 1.0
    else:
        plateau = float(
            np.mean(values >= best - plateau_tolerance * spread)
        )
    return TraceSummary(
        first=float(values[0]),
        last=float(values[-1]),
        best=best,
        improved=bool(values[-1] > values[0]),
        plateau_fraction=plateau,
        geweke_z=geweke_z(values),
        spread=spread,
    )


def geweke_z(
    trace: Sequence[float], head: float = 0.1, tail: float = 0.5
) -> float:
    """Geweke diagnostic on the second half of the trace.

    Compares the mean of the first ``head`` fraction against the last
    ``tail`` fraction of the post-midpoint trace; |z| ≲ 2 is consistent
    with stationarity.
    """
    values = np.asarray(list(trace), dtype=float)
    half = values[values.size // 2 :]
    if half.size < 4:
        raise ConvergenceError("trace too short for a Geweke diagnostic")
    n_head = max(int(half.size * head), 2)
    n_tail = max(int(half.size * tail), 2)
    a, b = half[:n_head], half[-n_tail:]
    var = a.var(ddof=1) / a.size + b.var(ddof=1) / b.size
    if var <= 0.0:
        return 0.0
    return float((a.mean() - b.mean()) / np.sqrt(var))
