"""Normal–Wishart posterior updates, sampling and predictive densities.

Implements equation (4) of the paper: given the concentration vectors
currently assigned to topic k, the NW posterior over (μ_k, Λ_k) has

    β_c = β + N_k            ν_c = ν + N_k
    μ_c = (N_k·ḡ + β·μ₀) / (N_k + β)
    S_c⁻¹ = S⁻¹ + Σ (g − ḡ)(g − ḡ)ᵀ + N_k·β/(N_k+β) (ḡ−μ₀)(ḡ−μ₀)ᵀ

from which (μ_k, Λ_k) are drawn as Λ ~ W(ν_c, S_c), μ ~ N(μ_c, (β_c Λ)⁻¹).
The fully-collapsed variant integrates (μ, Λ) out, giving a multivariate
Student-t predictive; both are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats
from scipy.special import gammaln

from repro.core.linalg import guarded_inv, guarded_slogdet, pd_logdet, symmetrize
from repro.core.priors import NormalWishartPrior
from repro.errors import ModelError
from repro.rng import RngLike, ensure_rng

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass(frozen=True)
class GaussianParams:
    """A sampled (μ, Λ) pair; Λ is a precision matrix."""

    mean: np.ndarray
    precision: np.ndarray

    def __post_init__(self) -> None:
        if self.precision.shape != (self.mean.size, self.mean.size):
            raise ModelError("precision shape mismatch")

    def log_density(self, x: np.ndarray) -> np.ndarray:
        """log N(x | μ, Λ⁻¹) for one vector or a batch of rows."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        diff = x - self.mean
        logdet = pd_logdet(self.precision, "precision matrix")
        quad = np.einsum("ni,ij,nj->n", diff, self.precision, diff)
        out = 0.5 * (logdet - self.mean.size * _LOG_2PI - quad)
        return out if out.size > 1 else out[:1]

    @property
    def covariance(self) -> np.ndarray:
        """Λ⁻¹."""
        return guarded_inv(self.precision)


def batch_log_density(
    params: Sequence[GaussianParams], x: np.ndarray
) -> np.ndarray:
    """log N(x_n | μ_k, Λ_k⁻¹) for every (document, topic) pair at once.

    Stacks the K precision matrices and evaluates all K quadratic forms
    in a single einsum and all K log-determinants in one batched
    ``slogdet``, returning an ``(n, K)`` matrix. The reduction order per
    element matches :meth:`GaussianParams.log_density`, so the result is
    bit-identical to the per-topic loop it replaces while dispatching
    O(1) numpy calls instead of O(K).
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    means = np.stack([p.mean for p in params])            # (K, d)
    precisions = np.stack([p.precision for p in params])  # (K, d, d)
    logdets = pd_logdet(precisions, "precision matrix")
    diff = x[None, :, :] - means[:, None, :]              # (K, n, d)
    quad = np.einsum("kni,kij,knj->kn", diff, precisions, diff)
    return 0.5 * (logdets[:, None] - means.shape[1] * _LOG_2PI - quad).T


def posterior(prior: NormalWishartPrior, data: np.ndarray) -> NormalWishartPrior:
    """The NW posterior after observing the rows of ``data`` (eq. (4))."""
    data = np.atleast_2d(np.asarray(data, dtype=float))
    if data.shape[0] == 0:
        return prior
    if data.shape[1] != prior.dim:
        raise ModelError(
            f"data dim {data.shape[1]} does not match prior dim {prior.dim}"
        )
    n = data.shape[0]
    xbar = data.mean(axis=0)
    centered = data - xbar
    scatter = centered.T @ centered
    dmean = xbar - prior.mean

    kappa_c = prior.kappa + n
    dof_c = prior.dof + n
    mean_c = (n * xbar + prior.kappa * prior.mean) / kappa_c
    scale_inv = (
        guarded_inv(prior.scale)
        + scatter
        + (n * prior.kappa / kappa_c) * np.outer(dmean, dmean)
    )
    scale_c = symmetrize(guarded_inv(scale_inv))  # enforce symmetry numerically
    return NormalWishartPrior(mean=mean_c, kappa=kappa_c, dof=dof_c, scale=scale_c)


def sample(nw: NormalWishartPrior, rng: RngLike = None) -> GaussianParams:
    """Draw (μ, Λ) ~ NW(μ₀, β, ν, S)."""
    generator = ensure_rng(rng)
    precision = stats.wishart.rvs(
        df=nw.dof, scale=nw.scale, random_state=generator
    )
    precision = np.atleast_2d(precision)
    covariance = symmetrize(guarded_inv(nw.kappa * precision))
    mean = generator.multivariate_normal(nw.mean, covariance)
    return GaussianParams(mean=mean, precision=precision)


def expected_params(nw: NormalWishartPrior) -> GaussianParams:
    """Posterior-mean parameters: μ = μ₀, E[Λ] = ν·S."""
    return GaussianParams(mean=nw.mean.copy(), precision=nw.dof * nw.scale)


def log_predictive(nw: NormalWishartPrior, x: np.ndarray) -> float:
    """log p(x | NW) with (μ, Λ) integrated out: multivariate Student-t.

    t has ``ν − d + 1`` degrees of freedom, location μ₀ and scale matrix
    ``(β+1) / (β (ν − d + 1)) · S⁻¹``.
    """
    x = np.asarray(x, dtype=float)
    d = nw.dim
    dof_t = nw.dof - d + 1.0
    if dof_t <= 0:
        raise ModelError("NW dof too small for predictive density")
    scale_t = guarded_inv(nw.scale) * (nw.kappa + 1.0) / (nw.kappa * dof_t)
    diff = x - nw.mean
    solve = np.linalg.solve(scale_t, diff)
    quad = float(diff @ solve)
    _, logdet = guarded_slogdet(scale_t)
    return float(
        gammaln((dof_t + d) / 2.0)
        - gammaln(dof_t / 2.0)
        - 0.5 * (d * np.log(dof_t * np.pi) + logdet)  # repro: noqa[NUM002] - dof_t > 0 checked above
        - 0.5 * (dof_t + d) * np.log1p(quad / dof_t)
    )
