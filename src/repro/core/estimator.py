"""Texture estimation for new recipes — the paper's motivating use case.

"This study aims to provide home cooking users with reliable information
of texture, thereby enabling to find their favorite recipes in more
suitable manner." (Section I.)

:class:`TextureEstimator` folds a *new* posted recipe into a fitted
joint topic model: the recipe is featurised exactly like the training
corpus, its topic posterior is computed from the fitted parameters
(no resampling), and the estimate combines

* the dominant topic's texture-term pattern (what the dish will feel
  like, in words), and
* the empirical food-science settings linked to that topic (what a
  rheometer would say, in RU).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from repro.core.linalg import guarded_inv
from repro.core.linkage import TopicLinker
from repro.core.normal_wishart import GaussianParams
from repro.corpus.extraction import TextureTermExtractor
from repro.corpus.features import RecipeFeatures, build_features
from repro.corpus.recipe import Recipe
from repro.errors import ModelError
from repro.lexicon.dictionary import TextureDictionary, build_dictionary
from repro.rheology.studies import TABLE_I, EmpiricalSetting


@dataclass(frozen=True)
class TextureEstimate:
    """The estimate returned for one recipe."""

    recipe_id: str
    topic: int
    topic_distribution: np.ndarray
    predicted_terms: tuple[tuple[str, float], ...]   # (surface, probability)
    linked_settings: tuple[EmpiricalSetting, ...]    # nearest food-science rows

    @property
    def top_term(self) -> str:
        """The single most characteristic texture term."""
        return self.predicted_terms[0][0] if self.predicted_terms else ""

    def expected_rheology(self):
        """Mean measured texture over the linked empirical settings.

        Returns ``None`` when no Table I row links to the topic.
        """
        if not self.linked_settings:
            return None
        values = np.mean(
            [s.texture.as_array() for s in self.linked_settings], axis=0
        )
        from repro.rheology.attributes import TextureProfile

        return TextureProfile.from_array(values)


class TextureEstimator:
    """Fold-in texture estimation against a fitted pipeline.

    Parameters
    ----------
    result:
        A fitted :class:`~repro.pipeline.experiment.ExperimentResult`
        (or any object exposing ``model``, ``linker`` and ``vocabulary``).
    dictionary:
        Dictionary used to featurise incoming recipes.
    """

    def __init__(self, result, dictionary: TextureDictionary | None = None) -> None:
        model = result.model
        if getattr(model, "theta_", None) is None:
            raise ModelError("estimator needs a fitted model")
        self.model = model
        self.linker: TopicLinker = result.linker
        self.vocabulary: tuple[str, ...] = tuple(result.vocabulary)
        self._term_ids = {s: i for i, s in enumerate(self.vocabulary)}
        self.dictionary = dictionary or build_dictionary()
        self._extractor = TextureTermExtractor(self.dictionary)
        # Topic covariances floored exactly like the linker's: absent
        # gels make raw covariances near-singular, which would let broad
        # mixed topics dominate the fold-in posterior.
        floor = (self.linker.point_sigma**2) * np.eye(3)
        self._gel_params = [
            GaussianParams(
                mean=np.asarray(model.gel_means_)[k],
                precision=guarded_inv(np.asarray(model.gel_covs_)[k] + floor),
            )
            for k in range(model.n_topics)
        ]
        # Under the generative model a fresh document's topic prior is the
        # symmetric Dir(α) mean — uniform.
        self._log_prior = np.zeros(model.n_topics)

    # -- inference ------------------------------------------------------------

    def topic_posterior(self, features: RecipeFeatures) -> np.ndarray:
        """p(topic | gel vector, texture terms) under fitted parameters."""
        logits = self._log_prior.copy()
        for k in range(self.model.n_topics):
            logits[k] += float(
                self._gel_params[k].log_density(features.gel_log)[0]
            )
        phi = np.asarray(self.model.phi_)
        for surface, count in features.term_counts.items():
            term_id = self._term_ids.get(surface)
            if term_id is not None:
                logits += count * np.log(np.maximum(phi[:, term_id], 1e-12))
        logits -= logsumexp(logits)
        return np.exp(logits)

    def estimate_features(self, features: RecipeFeatures) -> TextureEstimate:
        """Estimate from already-built features."""
        posterior = self.topic_posterior(features)
        topic = int(posterior.argmax())
        terms = tuple(
            (self.vocabulary[v], p) for v, p in self.model.top_words(topic, 8)
        )
        table = self.linker.assignment_table(TABLE_I)
        linked = tuple(
            s for s in TABLE_I if s.data_id in table.get(topic, ())
        )
        return TextureEstimate(
            recipe_id=features.recipe_id,
            topic=topic,
            topic_distribution=posterior,
            predicted_terms=terms,
            linked_settings=linked,
        )

    def estimate(self, recipe: Recipe) -> TextureEstimate:
        """Estimate the texture of a new posted recipe.

        Texture terms already present in the description are used as
        evidence; a recipe with *no* texture words is estimated from its
        ingredient concentrations alone — the cold-start case the paper
        targets.
        """
        features = build_features(recipe, self._extractor)
        return self.estimate_features(features)
