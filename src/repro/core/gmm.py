"""Baseline: concentrations-only Bayesian Gaussian mixture.

The mirror image of the LDA baseline: clusters recipes purely by their
gel (or gel+emulsion) concentration vectors, ignoring texture words.
Together the two baselines bracket the joint model in the ablation bench:
LDA sees only words, the GMM only concentrations; the joint model couples
both through shared θ_d.

Inference is Gibbs with Normal–Wishart conjugate updates (a collapsed-
weight finite mixture).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from repro.core import normal_wishart as nw
from repro.core.linalg import guarded_inv
from repro.core.priors import DirichletPrior, NormalWishartPrior
from repro.errors import ModelError, NotFittedError
from repro.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class GMMConfig:
    """Sampler configuration for the mixture baseline."""

    n_components: int = 10
    alpha: float = 1.0
    kappa: float = 0.1
    n_sweeps: int = 200
    burn_in: int = 100
    thin: int = 5

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ModelError("n_components must be >= 1")
        if not 0 <= self.burn_in < self.n_sweeps:
            raise ModelError("need 0 <= burn_in < n_sweeps")
        if self.thin < 1:
            raise ModelError("thin must be >= 1")


class BayesianGaussianMixture:
    """Finite Bayesian GMM with Gibbs inference."""

    def __init__(self, config: GMMConfig | None = None) -> None:
        self.config = config or GMMConfig()
        self.means_: np.ndarray | None = None
        self.covs_: np.ndarray | None = None
        self.weights_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.log_likelihoods_: list[float] = []

    def fit(
        self,
        data: np.ndarray,
        rng: RngLike = None,
        prior: NormalWishartPrior | None = None,
    ) -> "BayesianGaussianMixture":
        """Cluster the rows of ``data``."""
        cfg = self.config
        generator = ensure_rng(rng)
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < cfg.n_components:
            raise ModelError("need a (n, dim) matrix with n >= n_components")
        n, _ = data.shape
        k_range = cfg.n_components
        prior = prior or NormalWishartPrior.vague(data, kappa=cfg.kappa)
        alpha = DirichletPrior(cfg.alpha).vector(k_range)

        labels = generator.integers(0, k_range, size=n).astype(np.int64)
        mean_acc = np.zeros((k_range, data.shape[1]))
        cov_acc = np.zeros((k_range, data.shape[1], data.shape[1]))
        weight_acc = np.zeros(k_range)
        votes = np.zeros((n, k_range), dtype=np.int64)
        n_samples = 0
        self.log_likelihoods_ = []

        for sweep in range(cfg.n_sweeps):
            params = [
                nw.sample(nw.posterior(prior, data[labels == k]), generator)
                for k in range(k_range)
            ]
            counts = np.bincount(labels, minlength=k_range)
            log_weights = np.log(counts + alpha) - np.log(n + alpha.sum())  # repro: noqa[NUM002] - counts/n >= 0 and alpha > 0 (DirichletPrior)
            log_density = np.column_stack(
                [params[k].log_density(data) for k in range(k_range)]
            )
            logits = log_weights + log_density
            norms = logsumexp(logits, axis=1, keepdims=True)
            probs = np.exp(logits - norms)
            self.log_likelihoods_.append(float(norms.sum()))
            cumulative = np.cumsum(probs, axis=1)
            draws = generator.random(n) * cumulative[:, -1]
            labels = np.minimum(
                (cumulative < draws[:, None]).sum(axis=1), k_range - 1
            ).astype(np.int64)
            if sweep >= cfg.burn_in and (sweep - cfg.burn_in) % cfg.thin == 0:
                for k in range(k_range):
                    mean_acc[k] += params[k].mean
                    cov_acc[k] += params[k].covariance
                weight_acc += (counts + alpha) / (n + alpha.sum())
                votes[np.arange(n), labels] += 1
                n_samples += 1

        scale = max(n_samples, 1)
        self.means_ = mean_acc / scale
        self.covs_ = cov_acc / scale
        self.weights_ = weight_acc / scale
        self.labels_ = votes.argmax(axis=1)
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Most likely component for each row of ``data``."""
        if self.means_ is None:
            raise NotFittedError("GMM")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        logits = []
        for k in range(self.config.n_components):
            params = nw.GaussianParams(
                mean=self.means_[k], precision=guarded_inv(self.covs_[k])
            )
            logits.append(np.log(self.weights_[k] + 1e-12) + params.log_density(data))
        return np.column_stack(logits).argmax(axis=1)
