"""Gibbs count state shared by the topic models.

Keeps the N_dk / N_kv / N_k / N_d count matrices of equations (2)–(3)
and the document-level concentration-topic assignments y (whose indicator
counts are the paper's M_dk; each recipe carries exactly one gel vector,
so M_d = 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError


class TopicCounts:
    """Word-topic count matrices with O(1) increment/decrement."""

    def __init__(self, n_docs: int, n_topics: int, vocab_size: int) -> None:
        if min(n_docs, n_topics, vocab_size) <= 0:
            raise ModelError("counts need positive dimensions")
        self.n_dk = np.zeros((n_docs, n_topics), dtype=np.int64)
        self.n_kv = np.zeros((n_topics, vocab_size), dtype=np.int64)
        self.n_k = np.zeros(n_topics, dtype=np.int64)
        self.n_d = np.zeros(n_docs, dtype=np.int64)

    @property
    def n_topics(self) -> int:
        return self.n_kv.shape[0]

    @property
    def vocab_size(self) -> int:
        return self.n_kv.shape[1]

    def add(self, d: int, k: int, v: int) -> None:
        """Count token ``v`` of document ``d`` under topic ``k``."""
        self.n_dk[d, k] += 1
        self.n_kv[k, v] += 1
        self.n_k[k] += 1
        self.n_d[d] += 1

    def remove(self, d: int, k: int, v: int) -> None:
        """Remove one (d, k, v) count (the ``-dn`` superscript)."""
        self.n_dk[d, k] -= 1
        self.n_kv[k, v] -= 1
        self.n_k[k] -= 1
        self.n_d[d] -= 1
        if self.n_dk[d, k] < 0 or self.n_kv[k, v] < 0:
            raise ModelError("count went negative; remove() without add()")

    def check(self) -> None:
        """Internal consistency (used by tests and property checks)."""
        if not (
            self.n_dk.sum() == self.n_kv.sum() == self.n_k.sum() == self.n_d.sum()
        ):
            raise ModelError("count matrices disagree on the total")
        if np.any(self.n_dk < 0) or np.any(self.n_kv < 0):
            raise ModelError("negative counts")
        if not np.array_equal(self.n_kv.sum(axis=1), self.n_k):
            raise ModelError("n_k inconsistent with n_kv")
        if not np.array_equal(self.n_dk.sum(axis=1), self.n_d):
            raise ModelError("n_d inconsistent with n_dk")


def initialise_assignments(
    docs: Sequence[np.ndarray],
    counts: TopicCounts,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Random initial z for every token, registered into ``counts``."""
    assignments: list[np.ndarray] = []
    n_topics = counts.n_topics
    for d, words in enumerate(docs):
        z = rng.integers(0, n_topics, size=len(words))
        for v, k in zip(words, z):
            counts.add(d, int(k), int(v))
        assignments.append(z.astype(np.int64))
    return assignments


def validate_docs(docs: Sequence[np.ndarray], vocab_size: int) -> None:
    """Check every doc is an int array of valid word ids."""
    for d, words in enumerate(docs):
        arr = np.asarray(words)
        if arr.size and (arr.min() < 0 or arr.max() >= vocab_size):
            raise ModelError(
                f"doc {d} contains word ids outside [0, {vocab_size})"
            )
