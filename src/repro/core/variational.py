"""Mean-field variational inference for the joint texture topic model.

A deterministic alternative to the Gibbs samplers: coordinate-ascent
variational inference (CAVI) with the standard factorisation

    q(Z) q(y) q(θ) q(φ) q(μ, Λ) q(m, L)

combining Blei et al.'s variational LDA for the word channel with
Bishop's (PRML §10.2) variational Gaussian mixture for the concentration
channels, coupled through the shared Dirichlet q(θ_d) exactly as the
paper's Fig 1 couples them. Each full update round cannot decrease the
evidence lower bound; :attr:`elbo_trace_` records it and the fit stops at
relative convergence or ``max_iter``.

Compared with Gibbs: no Monte-Carlo noise, embarrassingly vectorised
(typically ~10× faster to a comparable solution at paper scale), at the
cost of the usual mean-field underdispersion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import digamma, gammaln

from repro.core.linalg import guarded_inv, guarded_slogdet, symmetrize
from repro.core.priors import DirichletPrior, NormalWishartPrior
from repro.core.seeding import kmeans_plus_plus
from repro.errors import ModelError, NotFittedError
from repro.rng import RngLike, ensure_rng

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass(frozen=True)
class VariationalConfig:
    """CAVI configuration."""

    n_topics: int = 10
    alpha: float = 1.0
    gamma: float = 0.1
    kappa: float = 0.1
    max_iter: int = 200
    tol: float = 1e-5
    seed_y_with_kmeans: bool = True

    def __post_init__(self) -> None:
        if self.n_topics < 1:
            raise ModelError("n_topics must be >= 1")
        if self.max_iter < 1 or self.tol <= 0:
            raise ModelError("degenerate optimisation configuration")


class _NWPosterior:
    """Per-topic Normal–Wishart variational factors, vectorised over k."""

    def __init__(self, prior: NormalWishartPrior, n_topics: int) -> None:
        self.prior = prior
        d = prior.dim
        self.d = d
        self.m = np.tile(prior.mean, (n_topics, 1))
        self.beta = np.full(n_topics, prior.kappa)
        self.nu = np.full(n_topics, prior.dof)
        self.W = np.tile(prior.scale, (n_topics, 1, 1))

    # -- expectations -------------------------------------------------------

    def expected_log_det(self) -> np.ndarray:
        """E[ln |Λ_k|] per topic."""
        k_range, d = self.nu.shape[0], self.d
        out = np.empty(k_range)
        for k in range(k_range):
            _, logdet = guarded_slogdet(self.W[k])
            out[k] = (
                digamma(0.5 * (self.nu[k] - np.arange(d))).sum()
                + d * np.log(2.0)
                + logdet
            )
        return out

    def expected_log_gauss(self, data: np.ndarray) -> np.ndarray:
        """E[ln N(x_d | μ_k, Λ_k⁻¹)] as a (D, K) matrix."""
        d = self.d
        log_det = self.expected_log_det()
        out = np.empty((data.shape[0], self.nu.shape[0]))
        for k in range(self.nu.shape[0]):
            diff = data - self.m[k]
            quad = self.nu[k] * np.einsum(
                "ni,ij,nj->n", diff, self.W[k], diff
            )
            out[:, k] = 0.5 * (
                log_det[k] - d * _LOG_2PI - d / self.beta[k] - quad
            )
        return out

    # -- update -------------------------------------------------------------

    def update(self, data: np.ndarray, responsibilities: np.ndarray) -> None:
        """Bishop 10.60–10.63 with soft counts from ``responsibilities``."""
        prior = self.prior
        n_k = responsibilities.sum(axis=0) + 1e-12
        xbar = (responsibilities.T @ data) / n_k[:, None]
        w0_inv = guarded_inv(prior.scale)
        for k in range(self.nu.shape[0]):
            diff = data - xbar[k]
            scatter = (responsibilities[:, k][:, None] * diff).T @ diff
            dmean = xbar[k] - prior.mean
            self.beta[k] = prior.kappa + n_k[k]
            self.nu[k] = prior.dof + n_k[k]
            self.m[k] = (prior.kappa * prior.mean + n_k[k] * xbar[k]) / self.beta[k]
            w_inv = (
                w0_inv
                + scatter
                + (prior.kappa * n_k[k] / self.beta[k]) * np.outer(dmean, dmean)
            )
            self.W[k] = symmetrize(guarded_inv(w_inv))

    # -- ELBO pieces ----------------------------------------------------------

    def _log_wishart_b(self, w: np.ndarray, nu: float) -> float:
        """ln B(W, ν), the Wishart normaliser (Bishop B.79)."""
        d = self.d
        _, logdet = guarded_slogdet(w)
        return float(
            -0.5 * nu * logdet
            - 0.5 * nu * d * np.log(2.0)
            - 0.25 * d * (d - 1) * np.log(np.pi)
            - gammaln(0.5 * (nu - np.arange(d))).sum()
        )

    def elbo_terms(self) -> float:
        """E[ln p(μ,Λ)] − E[ln q(μ,Λ)], summed over topics
        (Bishop 10.74 and 10.77, including the constant terms)."""
        prior = self.prior
        d = self.d
        log_det = self.expected_log_det()
        w0_inv = guarded_inv(prior.scale)
        log_b0 = self._log_wishart_b(prior.scale, prior.dof)
        total = 0.0
        for k in range(self.nu.shape[0]):
            dmean = self.m[k] - prior.mean
            e_quad = (
                d * prior.kappa / self.beta[k]
                + prior.kappa * self.nu[k] * float(dmean @ self.W[k] @ dmean)
            )
            e_log_p_mu = 0.5 * (
                d * np.log(prior.kappa / (2.0 * np.pi))  # repro: noqa[NUM002] - kappa > 0 validated by NormalWishartPrior
                + log_det[k]
                - e_quad
            )
            e_log_p_lambda = (
                log_b0
                + 0.5 * (prior.dof - d - 1) * log_det[k]
                - 0.5 * self.nu[k] * float(np.trace(w0_inv @ self.W[k]))
            )
            e_log_q_mu = 0.5 * (
                d * np.log(self.beta[k] / (2.0 * np.pi)) + log_det[k] - d  # repro: noqa[NUM002] - beta = kappa + soft counts > 0
            )
            entropy_lambda = -(
                self._log_wishart_b(self.W[k], self.nu[k])
                + 0.5 * (self.nu[k] - d - 1) * log_det[k]
                - 0.5 * self.nu[k] * d
            )
            e_log_q_lambda = -entropy_lambda
            total += (
                e_log_p_mu + e_log_p_lambda - e_log_q_mu - e_log_q_lambda
            )
        return float(total)


def _dirichlet_elbo(
    posterior: np.ndarray, prior: np.ndarray, e_log: np.ndarray
) -> float:
    """Σ rows of E[ln p(x|prior)] − E[ln q(x|posterior)]."""
    def log_c(params):
        return gammaln(params.sum(axis=-1)) - gammaln(params).sum(axis=-1)

    prior_rows = np.broadcast_to(prior, posterior.shape)
    e_p = log_c(prior_rows) + ((prior_rows - 1.0) * e_log).sum(axis=-1)
    e_q = log_c(posterior) + ((posterior - 1.0) * e_log).sum(axis=-1)
    return float((e_p - e_q).sum())


class VariationalJointModel:
    """CAVI inference for the joint texture topic model."""

    def __init__(self, config: VariationalConfig | None = None) -> None:
        self.config = config or VariationalConfig()
        self.phi_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None
        self.gel_means_: np.ndarray | None = None
        self.gel_covs_: np.ndarray | None = None
        self.emulsion_means_: np.ndarray | None = None
        self.emulsion_covs_: np.ndarray | None = None
        self.y_: np.ndarray | None = None
        self.elbo_trace_: list[float] = []
        self.n_iter_: int = 0

    # -- fitting ------------------------------------------------------------

    def fit(
        self,
        docs,
        gels: np.ndarray,
        emulsions: np.ndarray,
        vocab_size: int,
        rng: RngLike = None,
        gel_prior: NormalWishartPrior | None = None,
        emulsion_prior: NormalWishartPrior | None = None,
    ) -> "VariationalJointModel":
        """Run CAVI to convergence of the ELBO."""
        cfg = self.config
        generator = ensure_rng(rng)
        gels = np.asarray(gels, dtype=float)
        emulsions = np.asarray(emulsions, dtype=float)
        n_docs = len(docs)
        if n_docs == 0:
            raise ModelError("no documents")
        k_range = cfg.n_topics

        # doc-term count matrix
        counts = np.zeros((n_docs, vocab_size))
        for d, words in enumerate(docs):
            for v in np.asarray(words, dtype=int):
                counts[d, v] += 1.0
        alpha = DirichletPrior(cfg.alpha).vector(k_range)
        gamma = np.full(vocab_size, cfg.gamma)

        gel_prior = gel_prior or NormalWishartPrior.vague(gels, kappa=cfg.kappa)
        emulsion_prior = emulsion_prior or NormalWishartPrior.vague(
            emulsions, kappa=cfg.kappa
        )
        gel_q = _NWPosterior(gel_prior, k_range)
        emu_q = _NWPosterior(emulsion_prior, k_range)

        # initialise responsibilities from k-means (or softly at random)
        if cfg.seed_y_with_kmeans:
            labels = kmeans_plus_plus(gels, k_range, generator)
            r_y = np.full((n_docs, k_range), 0.5 / max(k_range - 1, 1))
            r_y[np.arange(n_docs), labels] = 0.5
            r_y /= r_y.sum(axis=1, keepdims=True)
        else:
            r_y = generator.dirichlet(np.ones(k_range), size=n_docs)
        gel_q.update(gels, r_y)
        emu_q.update(emulsions, r_y)
        theta_param = alpha + r_y + counts.sum(axis=1, keepdims=True) / k_range
        phi_param = gamma + generator.random((k_range, vocab_size)) * 0.01

        self.elbo_trace_ = []
        previous = -np.inf
        for iteration in range(cfg.max_iter):
            e_log_theta = digamma(theta_param) - digamma(
                theta_param.sum(axis=1, keepdims=True)
            )
            e_log_phi = digamma(phi_param) - digamma(
                phi_param.sum(axis=1, keepdims=True)
            )

            # -- q(z): per-(doc, word) responsibilities ----------------------
            # logits (D, V, K) factorise as e_log_theta[d] + e_log_phi[:,v]
            log_rz = e_log_theta[:, None, :] + e_log_phi.T[None, :, :]
            log_rz -= log_rz.max(axis=2, keepdims=True)
            r_z = np.exp(log_rz)
            r_z /= r_z.sum(axis=2, keepdims=True)

            # -- q(y) ---------------------------------------------------------
            log_gauss = gel_q.expected_log_gauss(gels) + emu_q.expected_log_gauss(
                emulsions
            )
            log_ry = e_log_theta + log_gauss
            log_ry -= log_ry.max(axis=1, keepdims=True)
            r_y = np.exp(log_ry)
            r_y /= r_y.sum(axis=1, keepdims=True)

            # -- q(θ), q(φ), q(μΛ), q(mL) ------------------------------------
            word_soft = np.einsum("dv,dvk->dk", counts, r_z)
            theta_param = alpha + word_soft + r_y
            phi_param = gamma + np.einsum("dv,dvk->kv", counts, r_z)
            gel_q.update(gels, r_y)
            emu_q.update(emulsions, r_y)

            elbo = self._elbo(
                counts, gels, emulsions, r_z, r_y,
                theta_param, phi_param, e_log_theta, e_log_phi,
                alpha, gamma, gel_q, emu_q,
            )
            self.elbo_trace_.append(elbo)
            self.n_iter_ = iteration + 1
            if np.isfinite(previous) and abs(elbo - previous) <= cfg.tol * abs(
                previous
            ):
                break
            previous = elbo

        # -- point estimates -----------------------------------------------------
        self.theta_ = theta_param / theta_param.sum(axis=1, keepdims=True)
        self.phi_ = phi_param / phi_param.sum(axis=1, keepdims=True)
        self.gel_means_ = gel_q.m.copy()
        self.gel_covs_ = np.stack(
            [
                guarded_inv(gel_q.nu[k] * gel_q.W[k])
                for k in range(k_range)
            ]
        )
        self.emulsion_means_ = emu_q.m.copy()
        self.emulsion_covs_ = np.stack(
            [
                guarded_inv(emu_q.nu[k] * emu_q.W[k])
                for k in range(k_range)
            ]
        )
        self.y_ = r_y.argmax(axis=1)
        return self

    def _elbo(
        self, counts, gels, emulsions, r_z, r_y,
        theta_param, phi_param, e_log_theta, e_log_phi,
        alpha, gamma, gel_q, emu_q,
    ) -> float:
        # NB: e_log_theta / e_log_phi are the expectations the
        # responsibilities were computed FROM (pre-update); recompute the
        # Dirichlet expectations for the updated factors
        e_log_theta_new = digamma(theta_param) - digamma(
            theta_param.sum(axis=1, keepdims=True)
        )
        e_log_phi_new = digamma(phi_param) - digamma(
            phi_param.sum(axis=1, keepdims=True)
        )
        weighted = counts[:, :, None] * r_z
        e_log_pw = float(
            (weighted * e_log_phi_new.T[None, :, :]).sum()
        )
        e_log_pz = float((weighted * e_log_theta_new[:, None, :]).sum())
        with np.errstate(divide="ignore", invalid="ignore"):
            entropy_z = -float(
                np.nansum(weighted * np.where(r_z > 0, np.log(r_z), 0.0))
            )
            entropy_y = -float(
                np.nansum(r_y * np.where(r_y > 0, np.log(r_y), 0.0))
            )
        e_log_py = float((r_y * e_log_theta_new).sum())
        e_log_px = float(
            (r_y * gel_q.expected_log_gauss(gels)).sum()
            + (r_y * emu_q.expected_log_gauss(emulsions)).sum()
        )
        theta_kl = _dirichlet_elbo(theta_param, alpha, e_log_theta_new)
        phi_kl = _dirichlet_elbo(phi_param, gamma, e_log_phi_new)
        return (
            e_log_pw + e_log_pz + e_log_py + e_log_px
            + entropy_z + entropy_y
            + theta_kl + phi_kl
            + gel_q.elbo_terms() + emu_q.elbo_terms()
        )

    # -- fitted accessors -----------------------------------------------------

    @property
    def n_topics(self) -> int:
        return self.config.n_topics

    def _require_fit(self) -> None:
        if self.theta_ is None:
            raise NotFittedError("variational joint model")

    def topic_assignments(self) -> np.ndarray:
        """Hard per-recipe topic (argmax θ_d)."""
        self._require_fit()
        return np.asarray(self.theta_).argmax(axis=1)

    def topic_sizes(self) -> np.ndarray:
        """Recipes per topic."""
        return np.bincount(self.topic_assignments(), minlength=self.n_topics)

    def top_words(self, k: int, n: int = 10) -> list[tuple[int, float]]:
        """The ``n`` highest-probability word ids of topic ``k``."""
        self._require_fit()
        row = np.asarray(self.phi_)[k]
        order = np.argsort(row)[::-1][:n]
        return [(int(v), float(row[v])) for v in order]
