"""Conjugate prior containers.

Two priors drive the joint model of Fig 1: a Dirichlet over topic /
word distributions (α, γ) and a Normal–Wishart over each topic's
concentration Gaussian (μ₀, β, ν, S).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class DirichletPrior:
    """A symmetric-or-vector Dirichlet prior.

    ``concentration`` may be a positive scalar (symmetric prior) or a
    positive vector of per-component weights.
    """

    concentration: float | np.ndarray

    def __post_init__(self) -> None:
        arr = np.atleast_1d(np.asarray(self.concentration, dtype=float))
        if arr.ndim != 1 or not np.all(arr > 0.0):
            raise ModelError("Dirichlet concentration must be positive")

    def vector(self, size: int) -> np.ndarray:
        """The prior as a length-``size`` vector."""
        arr = np.atleast_1d(np.asarray(self.concentration, dtype=float))
        if arr.size == 1:
            return np.full(size, float(arr[0]))
        if arr.size != size:
            raise ModelError(
                f"Dirichlet prior has size {arr.size}, expected {size}"
            )
        return arr.copy()

    def total(self, size: int) -> float:
        """Σα for a prior applied to ``size`` components."""
        return float(self.vector(size).sum())


@dataclass(frozen=True)
class NormalWishartPrior:
    """The NW(μ₀, β, ν, S) prior of the paper's equation (1).

    ``scale`` is the Wishart scale matrix **S** (so ``E[Λ] = ν·S``);
    ``dof`` must exceed ``dim − 1``.
    """

    mean: np.ndarray
    kappa: float           # β in the paper: pseudo-count on the mean
    dof: float             # ν: Wishart degrees of freedom
    scale: np.ndarray      # S: Wishart scale matrix

    def __post_init__(self) -> None:
        mean = np.asarray(self.mean, dtype=float)
        scale = np.asarray(self.scale, dtype=float)
        if mean.ndim != 1:
            raise ModelError("NW mean must be a vector")
        dim = mean.size
        if scale.shape != (dim, dim):
            raise ModelError(f"NW scale must be {dim}x{dim}")
        if not np.allclose(scale, scale.T):
            raise ModelError("NW scale must be symmetric")
        if self.kappa <= 0.0:
            raise ModelError("NW kappa (β) must be positive")
        if self.dof <= dim - 1:
            raise ModelError(f"NW dof (ν) must exceed dim-1 = {dim - 1}")
        try:
            np.linalg.cholesky(scale)
        except np.linalg.LinAlgError:
            raise ModelError("NW scale must be positive definite") from None
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "scale", scale)

    @property
    def dim(self) -> int:
        """Dimensionality of the Gaussian."""
        return self.mean.size

    @classmethod
    def vague(
        cls,
        data: np.ndarray,
        kappa: float = 0.1,
        scatter_weight: float = 0.3,
    ) -> "NormalWishartPrior":
        """A weakly-informative prior centred on the data.

        μ₀ = data mean. The Wishart scale is set so the prior contributes
        a pseudo-scatter of ``scatter_weight`` observations of the
        corpus-wide (diagonal) variance: ``S⁻¹ = scatter_weight ·
        diag(var)``. Small values keep a tight cluster's posterior
        covariance near its empirical scatter instead of being dragged
        toward the corpus spread — important here because topics are far
        tighter than the corpus (a single gel band vs. all gel bands).
        """
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < 2:
            raise ModelError("need a (n, dim) data matrix with n >= 2")
        if scatter_weight <= 0.0:
            raise ModelError("scatter_weight must be positive")
        dim = data.shape[1]
        variance = np.maximum(data.var(axis=0), 1e-6)
        dof = float(dim + 2)
        scale = np.diag(1.0 / (scatter_weight * variance))
        return cls(mean=data.mean(axis=0), kappa=kappa, dof=dof, scale=scale)
