"""The paper's primary contribution: the joint texture topic model.

* :mod:`repro.core.priors` / :mod:`repro.core.normal_wishart` — conjugate
  prior machinery (Dirichlet, Normal–Wishart);
* :mod:`repro.core.joint_model` — the joint topic model of Section III-B
  with the Gibbs sampler of Section III-C (equations (2)–(4));
* :mod:`repro.core.lda` — words-only collapsed-Gibbs LDA baseline;
* :mod:`repro.core.gmm` — concentrations-only Bayesian GMM baseline;
* :mod:`repro.core.linkage` — KL-divergence linkage between topics and
  empirical food-science settings (Section III-C.4).
"""

from repro.core.gmm import BayesianGaussianMixture
from repro.core.joint_model import JointTextureTopicModel, JointModelConfig
from repro.core.lda import LatentDirichletAllocation
from repro.core.linkage import LinkageResult, TopicLinker
from repro.core.priors import DirichletPrior, NormalWishartPrior

__all__ = [
    "JointTextureTopicModel",
    "JointModelConfig",
    "LatentDirichletAllocation",
    "BayesianGaussianMixture",
    "TopicLinker",
    "LinkageResult",
    "DirichletPrior",
    "NormalWishartPrior",
]
