"""Baseline: words-only latent Dirichlet allocation (collapsed Gibbs).

This is what the paper calls "conventional LDA": topics are patterns of
texture terms alone, with no concentration channel. It serves as the
ablation baseline quantifying what the joint model's coupled gel channel
buys (bench ``ablation A``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.kernels import KERNEL_CHOICES, CSRTokens, make_kernel
from repro.core.priors import DirichletPrior
from repro.core.state import TopicCounts, initialise_assignments, validate_docs
from repro.core.telemetry import should_sample, sweep_telemetry
from repro.errors import ModelError, NotFittedError
from repro.obs import trace
from repro.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class LDAConfig:
    """Sampler configuration for the LDA baseline."""

    n_topics: int = 10
    alpha: float = 1.0
    gamma: float = 0.1
    n_sweeps: int = 400
    burn_in: int = 200
    thin: int = 5
    #: Token-sampling kernel: "dense" (default, bit-identical fast
    #: path), "legacy" (original per-token numpy loop), "sparse"
    #: (SparseLDA buckets + alias table), "alias" (LightLDA MH, O(1)
    #: per token), "adlda" (AD-LDA distributed shard sweeps) or "auto"
    #: (picked from K and corpus shape); all but dense/legacy are
    #: statistically equivalent, not bit-identical.
    kernel: str = "dense"
    #: Document shards for the "adlda" kernel (``None`` → min(4, D));
    #: ignored by every other kernel. The baseline LDA always fans the
    #: shards out on the serial executor.
    n_shards: int | None = None

    def __post_init__(self) -> None:
        if self.n_topics < 1:
            raise ModelError("n_topics must be >= 1")
        if not 0 <= self.burn_in < self.n_sweeps:
            raise ModelError("need 0 <= burn_in < n_sweeps")
        if self.thin < 1:
            raise ModelError("thin must be >= 1")
        if self.kernel not in KERNEL_CHOICES:
            raise ModelError(f"unknown sampling kernel {self.kernel!r}")
        if self.n_shards is not None and self.n_shards < 1:
            raise ModelError("n_shards must be >= 1")


class LatentDirichletAllocation:
    """Collapsed-Gibbs LDA over texture-term documents."""

    def __init__(self, config: LDAConfig | None = None) -> None:
        self.config = config or LDAConfig()
        self.phi_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None
        self.log_likelihoods_: list[float] = []
        #: Wall-clock seconds of the last :meth:`fit`, read from the
        #: same span the tracer exports.
        self.fit_seconds_: float | None = None

    def fit(
        self,
        docs: Sequence[np.ndarray],
        vocab_size: int,
        rng: RngLike = None,
    ) -> "LatentDirichletAllocation":
        """Run the Gibbs sampler over integer word-id documents."""
        cfg = self.config
        generator = ensure_rng(rng)
        validate_docs(docs, vocab_size)
        n_docs = len(docs)
        if n_docs == 0:
            raise ModelError("no documents")
        counts = TopicCounts(n_docs, cfg.n_topics, vocab_size)
        z = initialise_assignments(docs, counts, generator)

        alpha = DirichletPrior(cfg.alpha).vector(cfg.n_topics)
        gamma, v_total = cfg.gamma, cfg.gamma * vocab_size

        # Flatten the ragged corpus once; the kernel owns the z-sweep.
        kernel = make_kernel(
            cfg.kernel,
            CSRTokens.from_docs(docs, z),
            counts,
            alpha,
            gamma,
            n_shards=cfg.n_shards,
        )

        phi_acc = np.zeros((cfg.n_topics, vocab_size))
        theta_acc = np.zeros((n_docs, cfg.n_topics))
        n_samples = 0
        self.log_likelihoods_ = []
        trace_enabled = trace.is_enabled()

        with trace.span(
            "lda.fit",
            model="lda",
            n_topics=cfg.n_topics,
            n_sweeps=cfg.n_sweeps,
            kernel=cfg.kernel,
        ) as fit_span:
            for sweep in range(cfg.n_sweeps):
                if trace_enabled:
                    sweep_started = time.perf_counter()
                    kernel.sweep(generator)
                    sweep_seconds = time.perf_counter() - sweep_started
                else:
                    kernel.sweep(generator)
                self.log_likelihoods_.append(
                    word_log_likelihood(docs, counts, alpha, gamma)
                )
                if trace_enabled and should_sample(sweep, cfg.n_sweeps):
                    sweep_telemetry(
                        "lda",
                        sweep,
                        cfg.n_sweeps,
                        self.log_likelihoods_[-1],
                        kernel.csr.n_tokens,
                        sweep_seconds,
                        kernel=kernel.name,
                    )
                if sweep >= cfg.burn_in and (sweep - cfg.burn_in) % cfg.thin == 0:
                    phi_acc += (counts.n_kv + gamma) / (
                        counts.n_k[:, None] + v_total
                    )
                    theta_acc += (counts.n_dk + alpha) / (
                        counts.n_d[:, None] + alpha.sum()
                    )
                    n_samples += 1
        self.fit_seconds_ = fit_span.duration_s

        self.phi_ = phi_acc / max(n_samples, 1)
        self.theta_ = theta_acc / max(n_samples, 1)
        self._counts = counts
        return self

    # -- fitted accessors -----------------------------------------------------

    @property
    def n_topics(self) -> int:
        return self.config.n_topics

    def topic_assignments(self) -> np.ndarray:
        """Hard per-document topic: argmax of θ."""
        if self.theta_ is None:
            raise NotFittedError("LDA")
        return np.asarray(self.theta_).argmax(axis=1)

    def top_words(self, k: int, n: int = 10) -> list[tuple[int, float]]:
        """The ``n`` highest-probability word ids of topic ``k``."""
        if self.phi_ is None:
            raise NotFittedError("LDA")
        row = self.phi_[k]
        order = np.argsort(row)[::-1][:n]
        return [(int(v), float(row[v])) for v in order]


def word_log_likelihood(
    docs: Sequence[np.ndarray],
    counts: TopicCounts,
    alpha: np.ndarray,
    gamma: float,
) -> float:
    """Point estimate of Σ_dn log p(w_dn | θ̂_d, φ̂) for the trace."""
    v_total = gamma * counts.vocab_size
    phi = (counts.n_kv + gamma) / (counts.n_k[:, None] + v_total)
    theta = (counts.n_dk + alpha) / (counts.n_d[:, None] + alpha.sum())
    total = 0.0
    for d, words in enumerate(docs):
        if len(words) == 0:
            continue
        probs = theta[d] @ phi[:, np.asarray(words, dtype=int)]
        total += float(np.log(np.maximum(probs, 1e-300)).sum())
    return total
