"""Shared token-sampling kernels for the collapsed Gibbs samplers.

All three word-side samplers — :class:`repro.core.lda.LatentDirichletAllocation`,
:class:`repro.core.joint_model.JointTextureTopicModel` and
:class:`repro.core.collapsed.CollapsedJointModel` — perform the same
per-token z-update of equation (2): remove the token from the count
state, form K unnormalised topic weights, draw from the cumulative, add
the token back. This module centralises that sweep behind a small
kernel interface so the models share one implementation instead of
three hand-rolled loops:

``"legacy"``
    The original per-token numpy loop, kept verbatim for benchmarking
    and as the bit-identity reference.
``"dense"`` (default)
    The same arithmetic restructured as a flat CSR sweep with
    preallocated buffers and in-place count updates — no per-token
    numpy temporaries. It consumes the *same* uniforms in the *same*
    order and performs the *same* IEEE float operations as the legacy
    loop, so fitted models are bit-identical to the legacy kernel.
``"sparse"``
    A SparseLDA-style bucket decomposition (Yao, Mimno & McCallum,
    KDD'09): per token only the nonzero ``n_dk`` / ``n_kv`` entries are
    visited and the dense smoothing residual is drawn from a Walker
    alias table refreshed on a staleness budget. Statistically
    equivalent to the dense kernel but *not* bit-identical (it spends
    randomness differently); it wins when ``n_topics`` is large
    relative to the per-word topic support.
``"alias"``
    A LightLDA-style Metropolis–Hastings kernel (Yuan et al., WWW'15):
    per token one O(1) proposal — drawn from a cached per-word Walker
    alias table or from the document's own token topics, alternating
    cycle by cycle — followed by an exact acceptance test against the
    true collapsed conditional. Amortised O(1) per token independent
    of K; statistically equivalent, not bit-identical.
``"adlda"``
    Approximate Distributed LDA (Newman et al., JMLR'09): documents are
    split into token-balanced shards, each sweep runs one shard-local
    Gibbs sweep per shard — concurrently over
    :func:`repro.parallel.run_tasks`, against a stale copy of the
    global word-topic counts — then merges the shards' count deltas.
    Statistically equivalent, not bit-identical; the fit path for
    corpora too large for one serial sweep to be practical.
``"auto"``
    Not a kernel but a selection policy: :func:`select_kernel` picks
    dense, sparse or alias from K and the corpus statistics.

Kernel objects are built **once per fit**: the ragged ``docs`` list is
flattened into contiguous CSR-style arrays (``token_words``,
``token_topics``, ``doc_offsets``, all ``int32``) and, for the fast
kernels, mirrored into flat Python lists that the hot loop reads and
writes without numpy scalar-indexing overhead. During a fit the kernel
owns the count state; the numpy :class:`~repro.core.state.TopicCounts`
arrays are re-synchronised at the end of every sweep so the per-sweep
likelihood traces and posterior accumulators keep reading the arrays
they always read.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.state import TopicCounts
from repro.errors import ModelError
from repro.obs import metrics, trace
from repro.obs.log import get_logger

if TYPE_CHECKING:  # import cycle guard: repro.parallel traces via repro.obs
    from repro.parallel import ParallelConfig

logger = get_logger("repro.core.kernels")

#: Recognised kernel names, in documentation order.
KERNELS: tuple[str, ...] = ("adlda", "alias", "dense", "legacy", "sparse")

#: Everything a ``kernel=`` config field accepts: a concrete kernel or
#: the "auto" selection policy resolved by :func:`make_kernel`.
KERNEL_CHOICES: tuple[str, ...] = KERNELS + ("auto",)

#: Token moves between Walker-alias rebuilds of the sparse kernel's
#: smoothing bucket. The bucket's *mass* is always exact — the budget
#: only bounds how stale the within-bucket distribution may get.
ALIAS_REFRESH_DEFAULT: int = 2048


def build_alias_table(
    weights: Sequence[float], prob: list[float], alias: list[int]
) -> float:
    """Fill ``prob``/``alias`` with Walker's alias decomposition.

    ``weights`` are unnormalised positive masses; after the call, the
    draw ``slot = int(u * n); slot if u * n - slot < prob[slot] else
    alias[slot]`` samples index ``k`` with probability
    ``weights[k] / sum(weights)`` (to within float rounding of the
    table construction). Returns the total mass so callers tracking an
    exact bucket mass can resync it from the same pass.
    """
    total = sum(weights)
    n = len(weights)
    scaled = [w * n / total for w in weights]
    small = [k for k, p in enumerate(scaled) if p < 1.0]
    large = [k for k, p in enumerate(scaled) if p >= 1.0]
    while small and large:
        s_k, l_k = small.pop(), large.pop()
        prob[s_k] = scaled[s_k]
        alias[s_k] = l_k
        scaled[l_k] = (scaled[l_k] + scaled[s_k]) - 1.0
        (small if scaled[l_k] < 1.0 else large).append(l_k)
    for k in large:
        prob[k], alias[k] = 1.0, k
    for k in small:
        prob[k], alias[k] = 1.0, k
    return total


def sample_from_cumulative(cumulative: np.ndarray, uniform: float) -> int:
    """Inverse-CDF draw from an unnormalised cumulative-weight array.

    Returns the smallest index ``k`` with
    ``cumulative[k] >= uniform * cumulative[-1]``, clamped into
    ``[0, len(cumulative) - 1]``. The clamp matters on the boundary:
    when ``uniform * cumulative[-1]`` rounds up to exactly
    ``cumulative[-1]`` the raw ``searchsorted`` index can land one past
    the end (e.g. with ``side="right"`` semantics or degenerate weight
    vectors), which would corrupt the count state downstream.
    """
    index = int(np.searchsorted(cumulative, uniform * cumulative[-1]))
    last = len(cumulative) - 1
    return index if index < last else last


@dataclass(frozen=True)
class CSRTokens:
    """A ragged corpus flattened into contiguous CSR-style arrays.

    ``token_words[t]`` and ``token_topics[t]`` are the word id and the
    current topic of the ``t``-th token in corpus order;
    ``doc_offsets`` has ``n_docs + 1`` entries and document ``d`` owns
    the half-open token range
    ``doc_offsets[d]:doc_offsets[d + 1]``. Empty documents are
    represented by equal consecutive offsets.
    """

    token_words: np.ndarray
    token_topics: np.ndarray
    doc_offsets: np.ndarray

    @property
    def n_docs(self) -> int:
        return len(self.doc_offsets) - 1

    @property
    def n_tokens(self) -> int:
        return int(self.doc_offsets[-1])

    @classmethod
    def from_docs(
        cls,
        docs: Sequence[np.ndarray],
        z: Sequence[np.ndarray] | None = None,
    ) -> "CSRTokens":
        """Flatten per-document word (and topic) arrays, built once per fit."""
        lengths = [len(words) for words in docs]
        total = sum(lengths)
        if total > np.iinfo(np.int32).max:
            raise ModelError("corpus too large for int32 token offsets")
        offsets = np.zeros(len(docs) + 1, dtype=np.int32)
        np.cumsum(lengths, out=offsets[1:])
        words = np.zeros(total, dtype=np.int32)
        topics = np.zeros(total, dtype=np.int32)
        for d, doc in enumerate(docs):
            start, end = offsets[d], offsets[d + 1]
            words[start:end] = np.asarray(doc, dtype=np.int32)
            if z is not None:
                topics[start:end] = np.asarray(z[d], dtype=np.int32)
        return cls(token_words=words, token_topics=topics, doc_offsets=offsets)

    def shard(self, lo: int, hi: int) -> "CSRTokens":
        """Tokens of documents ``[lo, hi)``, offsets rebased to local 0.

        Word/topic arrays are views into the parent (cheap; pickling for
        a process worker copies them), offsets are a fresh rebased array.
        """
        if not 0 <= lo < hi <= self.n_docs:
            raise ModelError(
                f"shard bounds [{lo}, {hi}) outside [0, {self.n_docs}]"
            )
        t0, t1 = int(self.doc_offsets[lo]), int(self.doc_offsets[hi])
        return CSRTokens(
            token_words=self.token_words[t0:t1],
            token_topics=self.token_topics[t0:t1],
            doc_offsets=self.doc_offsets[lo:hi + 1] - t0,
        )

    def words_per_doc(self) -> list[np.ndarray]:
        """Un-flatten the word ids back into per-document arrays."""
        return self._split(self.token_words)

    def topics_per_doc(self) -> list[np.ndarray]:
        """Un-flatten the topic assignments back into per-document arrays."""
        return self._split(self.token_topics)

    def _split(self, flat: np.ndarray) -> list[np.ndarray]:
        offsets = self.doc_offsets
        return [
            flat[offsets[d]:offsets[d + 1]].copy() for d in range(self.n_docs)
        ]


class TokenKernel:
    """One full z-sweep over the flattened corpus.

    Subclasses implement :meth:`sweep`, which resamples every token's
    topic in corpus order, drawing the per-token uniforms as one
    ``generator.random(len(doc))`` batch per document (the draw pattern
    all pre-kernel samplers used, which pins the RNG stream). ``y`` is
    the per-document concentration-topic vector of the joint models
    (``None`` for plain LDA — no ``M_dk`` boost).

    During a fit the kernel has exclusive ownership of ``counts`` and
    ``csr.token_topics``; both are guaranteed up to date again when
    :meth:`sweep` returns.
    """

    #: Canonical kernel name (one of :data:`KERNELS`); telemetry keys
    #: the per-kernel ``kernel.sweep_seconds.<name>`` histograms on it.
    name: str = ""

    def __init__(
        self,
        csr: CSRTokens,
        counts: TopicCounts,
        alpha: np.ndarray,
        gamma: float,
    ) -> None:
        if csr.n_docs != counts.n_dk.shape[0]:
            raise ModelError("CSR state and counts disagree on n_docs")
        self.csr = csr
        self.counts = counts
        self.alpha = np.asarray(alpha, dtype=float)
        self.gamma = float(gamma)
        self.v_total = float(gamma) * counts.vocab_size

    @property
    def n_topics(self) -> int:
        return self.counts.n_topics

    def sweep(
        self, generator: np.random.Generator, y: np.ndarray | None = None
    ) -> None:
        raise NotImplementedError


class LegacyKernel(TokenKernel):
    """The original per-token numpy loop, verbatim.

    Allocates several O(K) numpy temporaries per token; kept as the
    benchmark baseline and the reference the dense kernel must match
    bit-for-bit.
    """

    name = "legacy"

    def sweep(
        self, generator: np.random.Generator, y: np.ndarray | None = None
    ) -> None:
        counts = self.counts
        alpha, gamma, v_total = self.alpha, self.gamma, self.v_total
        offsets = self.csr.doc_offsets
        token_words = self.csr.token_words
        token_topics = self.csr.token_topics
        for d in range(self.csr.n_docs):
            start, end = int(offsets[d]), int(offsets[d + 1])
            words = token_words[start:end]
            zd = token_topics[start:end]
            uniforms = generator.random(end - start)
            y_d = -1 if y is None else int(y[d])
            for n, v in enumerate(words):
                k_old = int(zd[n])
                counts.remove(d, k_old, int(v))
                if y_d >= 0:
                    weights = (counts.n_dk[d] + alpha).astype(float)
                    weights[y_d] += 1.0  # the M_dk term
                    weights *= (counts.n_kv[:, v] + gamma) / (
                        counts.n_k + v_total
                    )
                else:
                    weights = (counts.n_dk[d] + alpha) * (
                        (counts.n_kv[:, v] + gamma) / (counts.n_k + v_total)
                    )
                cumulative = np.cumsum(weights)
                k_new = sample_from_cumulative(cumulative, uniforms[n])
                zd[n] = k_new
                counts.add(d, k_new, int(v))


class DenseKernel(TokenKernel):
    """Flat CSR sweep with zero per-token allocations, bit-identical.

    The count matrices are mirrored into flat Python lists once at
    construction; the hot loop then runs entirely on list indexing and
    scalar float arithmetic. Per token it performs *exactly* the IEEE
    operations of the legacy loop in the same order —
    ``(n_dk + α) [+ 1.0 at y_d]`` times ``(n_kv + γ) / (n_k + γV)``,
    sequential cumulative sum, left-``searchsorted`` draw — so the
    sampled trajectory is bit-identical while avoiding all per-token
    numpy temporaries and dispatch overhead. The numpy ``counts`` and
    ``token_topics`` arrays are re-synchronised at the end of each
    sweep.

    When every ``α_k`` is integer-valued (the default priors are), the
    doc rows are stored pre-fused as ``n_dk + α_k`` floats: integer-
    valued doubles below 2**53 stay exact under ±1.0 updates, so the
    fused value equals ``fl(n_dk + α_k)`` bit-for-bit while saving one
    subscript-and-add per topic per token in the inner loop. Fractional
    ``α`` falls back to the unfused loop (incremental float updates
    would not be exact there).
    """

    name = "dense"

    def __init__(
        self,
        csr: CSRTokens,
        counts: TopicCounts,
        alpha: np.ndarray,
        gamma: float,
    ) -> None:
        super().__init__(csr, counts, alpha, gamma)
        # Python-list mirrors of the count state (ints stay exact) and
        # of the flat token stream; `_nvk` is column-major — the hot
        # loop reads one word column per token.
        self._alpha_list: list[float] = [float(a) for a in self.alpha]
        self._fused: bool = all(a.is_integer() for a in self._alpha_list)
        if self._fused:
            # doc rows stored as n_dk + α floats — exact for integer α
            self._ndk: list[list[float]] = [
                [int(c) + a for c, a in zip(row, self._alpha_list)]
                for row in counts.n_dk
            ]
        else:
            self._ndk = [[float(int(c)) for c in row] for row in counts.n_dk]
        self._nvk: list[list[int]] = [
            [int(c) for c in column] for column in counts.n_kv.T
        ]
        self._nk: list[int] = [int(c) for c in counts.n_k]
        self._words: list[int] = self.csr.token_words.tolist()
        self._topics: list[int] = self.csr.token_topics.tolist()
        self._offsets: list[int] = self.csr.doc_offsets.tolist()
        # Cached float factors of the weight formula. Only two entries
        # of each change per token move, and the changed entries are
        # always recomputed from the integer counts, so every cell
        # stays exactly ``fl(n_kv + γ)`` / ``fl(n_k + γV)`` — the cache
        # saves two adds per topic in the inner loop without drifting.
        self._nvkg: list[list[float]] = [
            [c + self.gamma for c in column] for column in self._nvk
        ]
        self._den: list[float] = [n + self.v_total for n in self._nk]
        # Preallocated cumulative-weight buffer, overwritten per token.
        self._cum: list[float] = [0.0] * self.n_topics

    def sweep(
        self, generator: np.random.Generator, y: np.ndarray | None = None
    ) -> None:
        if self._fused:
            self._sweep_fused(generator, y)
        else:
            self._sweep_unfused(generator, y)
        self._sync_out()

    def _sweep_fused(
        self, generator: np.random.Generator, y: np.ndarray | None
    ) -> None:
        """Hot loop with doc rows pre-fused as ``n_dk + α`` floats."""
        ndk, nvk, nk = self._ndk, self._nvk, self._nk
        nvkg, den, cum = self._nvkg, self._den, self._cum
        gamma, v_total = self.gamma, self.v_total
        words, topics, offsets = self._words, self._topics, self._offsets
        n_topics = len(nk)
        last = n_topics - 1
        topic_range = range(n_topics)
        for d in range(self.csr.n_docs):
            start, end = offsets[d], offsets[d + 1]
            # One batched uniform draw per document — the exact RNG
            # consumption pattern of the legacy loop (including empty
            # documents, which draw a length-0 batch).
            uniforms = generator.random(end - start).tolist()
            row = ndk[d]
            y_d = -1 if y is None else int(y[d])
            t = start
            for u in uniforms:
                v = words[t]
                k_old = topics[t]
                column = nvk[v]
                fcol = nvkg[v]
                row[k_old] -= 1.0
                c = column[k_old] - 1
                column[k_old] = c
                fcol[k_old] = c + gamma
                n = nk[k_old] - 1
                nk[k_old] = n
                den[k_old] = n + v_total
                total = 0.0
                for k in topic_range:
                    weight = row[k]
                    if k == y_d:
                        weight += 1.0  # the M_dk term
                    total += weight * (fcol[k] / den[k])
                    cum[k] = total
                k_new = bisect_left(cum, u * total)
                if k_new > last:
                    k_new = last
                topics[t] = k_new
                row[k_new] += 1.0
                c = column[k_new] + 1
                column[k_new] = c
                fcol[k_new] = c + gamma
                n = nk[k_new] + 1
                nk[k_new] = n
                den[k_new] = n + v_total
                t += 1

    def _sweep_unfused(
        self, generator: np.random.Generator, y: np.ndarray | None
    ) -> None:
        """Hot loop for fractional ``α``: rows hold bare counts."""
        ndk, nvk, nk = self._ndk, self._nvk, self._nk
        nvkg, den, cum = self._nvkg, self._den, self._cum
        alpha = self._alpha_list
        gamma, v_total = self.gamma, self.v_total
        words, topics, offsets = self._words, self._topics, self._offsets
        n_topics = len(nk)
        last = n_topics - 1
        topic_range = range(n_topics)
        for d in range(self.csr.n_docs):
            start, end = offsets[d], offsets[d + 1]
            uniforms = generator.random(end - start).tolist()
            row = ndk[d]
            y_d = -1 if y is None else int(y[d])
            t = start
            for u in uniforms:
                v = words[t]
                k_old = topics[t]
                column = nvk[v]
                fcol = nvkg[v]
                row[k_old] -= 1.0
                c = column[k_old] - 1
                column[k_old] = c
                fcol[k_old] = c + gamma
                n = nk[k_old] - 1
                nk[k_old] = n
                den[k_old] = n + v_total
                total = 0.0
                for k in topic_range:
                    weight = row[k] + alpha[k]
                    if k == y_d:
                        weight += 1.0  # the M_dk term
                    total += weight * (fcol[k] / den[k])
                    cum[k] = total
                k_new = bisect_left(cum, u * total)
                if k_new > last:
                    k_new = last
                topics[t] = k_new
                row[k_new] += 1.0
                c = column[k_new] + 1
                column[k_new] = c
                fcol[k_new] = c + gamma
                n = nk[k_new] + 1
                nk[k_new] = n
                den[k_new] = n + v_total
                t += 1

    def _sync_out(self) -> None:
        """Write the list mirrors back into the numpy count state."""
        counts = self.counts
        if self._fused:
            # fused rows hold n_dk + α; the subtraction is exact, so the
            # cast back to the integer count array is too
            counts.n_dk[...] = np.asarray(self._ndk) - self.alpha
        else:
            counts.n_dk[...] = self._ndk
        counts.n_kv.T[...] = self._nvk
        counts.n_k[...] = self._nk
        self.csr.token_topics[...] = self._topics


class SparseKernel(TokenKernel):
    """SparseLDA bucket sweep with a Walker-alias smoothing fallback.

    Per token the unnormalised weight factors exactly into three
    buckets (write ``n'_dk = n_dk + M_dk`` for the boosted doc count)::

        w_k = (n'_dk + α_k)(n_kv + γ) / (n_k + γV)
            =  q_k            topic-word bucket, nonzero only where n_kv > 0
            +  r_k            document bucket,   nonzero only where n'_dk > 0
            +  s_k            smoothing bucket,  dense but tiny and slow-moving

    with ``q_k = (n'_dk + α_k) n_kv / (n_k + γV)``,
    ``r_k = n'_dk γ / (n_k + γV)`` and ``s_k = α_k γ / (n_k + γV)``.
    The q bucket is rebuilt per token by iterating only the nonzero
    ``n_kv`` entries (dict-of-counts mirrors of the columns), and its
    mass is exact. The doc bucket's mass is maintained *incrementally*
    — per token move only the ``k_old``/``k_new`` terms change — and
    recomputed exactly at every document entry so float drift cannot
    outlive one document; its topics are only materialised (a scan
    over the document's nonzero topics) on an actual r-bucket hit.
    The smoothing bucket's mass is maintained exactly too (it only
    changes through ``n_k``), but *within* the bucket — hit with
    probability ``s / (q + r + s)``, typically well under a percent —
    topics are drawn from a Walker alias table that is allowed to go
    stale for up to ``alias_refresh`` token moves before it is rebuilt
    from the live counts. Statistically equivalent to the dense
    kernel, not bit-identical: it spends randomness differently (one
    extra uniform per smoothing-bucket hit) and sums the buckets in a
    different order.
    """

    name = "sparse"

    def __init__(
        self,
        csr: CSRTokens,
        counts: TopicCounts,
        alpha: np.ndarray,
        gamma: float,
        alias_refresh: int = ALIAS_REFRESH_DEFAULT,
    ) -> None:
        super().__init__(csr, counts, alpha, gamma)
        if alias_refresh < 1:
            raise ModelError("alias_refresh must be >= 1")
        self._alias_refresh = alias_refresh
        n_topics = self.n_topics
        self._rows: list[dict[int, int]] = [
            {k: int(c) for k, c in enumerate(row) if c}
            for row in counts.n_dk
        ]
        self._cols: list[dict[int, int]] = [
            {k: int(c) for k, c in enumerate(column) if c}
            for column in counts.n_kv.T
        ]
        self._nk: list[int] = [int(c) for c in counts.n_k]
        self._alpha_list: list[float] = [float(a) for a in self.alpha]
        self._alpha_gamma: list[float] = [
            float(a) * self.gamma for a in self.alpha
        ]
        self._words: list[int] = self.csr.token_words.tolist()
        self._topics: list[int] = self.csr.token_topics.tolist()
        self._offsets: list[int] = self.csr.doc_offsets.tolist()
        # Reusable per-token q-bucket buffers (topic ids + cumulative mass).
        self._bucket_topics: list[int] = [0] * n_topics
        self._bucket_cum: list[float] = [0.0] * n_topics
        # Walker alias table over the smoothing bucket.
        self._alias_prob: list[float] = [1.0] * n_topics
        self._alias_topic: list[int] = list(range(n_topics))
        self._alias_age = self._alias_refresh  # force a first build
        self._smooth_mass = 0.0
        #: Lifetime count of alias-table rebuilds (observability surface;
        #: the tracer reports the per-sweep delta).
        self.alias_refreshes: int = 0
        self._rebuild_smoothing()

    # -- smoothing bucket -------------------------------------------------

    def _smoothing_terms(self) -> list[float]:
        v_total, nk = self.v_total, self._nk
        return [
            ag / (n + v_total) for ag, n in zip(self._alpha_gamma, nk)
        ]

    def _rebuild_smoothing(self) -> None:
        """Rebuild the alias table and resync the exact smoothing mass.

        Also the drift kill-switch: the incrementally-maintained mass is
        replaced by a fresh sum every rebuild, so float error cannot
        accumulate past one staleness window.
        """
        self._smooth_mass = build_alias_table(
            self._smoothing_terms(), self._alias_prob, self._alias_topic
        )
        self._alias_age = 0
        self.alias_refreshes += 1

    def _draw_smoothing(self, generator: np.random.Generator) -> int:
        if self._alias_age >= self._alias_refresh:
            self._rebuild_smoothing()
        n_topics = len(self._alias_prob)
        u = generator.random() * n_topics
        slot = int(u)
        if slot >= n_topics:  # u == n_topics is a measure-zero boundary
            slot = n_topics - 1
        if u - slot < self._alias_prob[slot]:
            return slot
        return self._alias_topic[slot]

    # -- the sweep --------------------------------------------------------

    def sweep(
        self, generator: np.random.Generator, y: np.ndarray | None = None
    ) -> None:
        rows, cols, nk = self._rows, self._cols, self._nk
        alpha, alpha_gamma = self._alpha_list, self._alpha_gamma
        gamma, v_total = self.gamma, self.v_total
        words, topics, offsets = self._words, self._topics, self._offsets
        q_topics, q_cum = self._bucket_topics, self._bucket_cum
        refreshes_before = self.alias_refreshes
        self._rebuild_smoothing()
        for d in range(self.csr.n_docs):
            start, end = offsets[d], offsets[d + 1]
            uniforms = generator.random(end - start).tolist()
            row = rows[d]
            y_d = -1 if y is None else int(y[d])
            # Exact doc-bucket mass at document entry — the drift
            # kill-switch for the incremental ±term updates below, so
            # float error cannot outlive one document.
            r_total = 0.0
            for k, c in row.items():
                boosted = c + 1.0 if k == y_d else c
                r_total += boosted * gamma / (nk[k] + v_total)
            if y_d >= 0 and y_d not in row:
                r_total += gamma / (nk[y_d] + v_total)
            t = start
            for u in uniforms:
                v = words[t]
                k_old = topics[t]
                column = cols[v]
                # remove the token (the -dn superscript), keeping the
                # smoothing and doc-bucket masses exact under the change
                boost_old = 1.0 if k_old == y_d else 0.0
                count = row[k_old]
                r_total -= (count + boost_old) * gamma / (
                    nk[k_old] + v_total
                )
                count -= 1
                if count:
                    row[k_old] = count
                else:
                    del row[k_old]
                ccount = column[k_old] - 1
                if ccount:
                    column[k_old] = ccount
                else:
                    del column[k_old]
                n_old = nk[k_old]
                nk[k_old] = n_old - 1
                self._smooth_mass += alpha_gamma[k_old] / (
                    n_old - 1 + v_total
                ) - alpha_gamma[k_old] / (n_old + v_total)
                if count or boost_old:
                    r_total += (count + boost_old) * gamma / (
                        nk[k_old] + v_total
                    )

                # topic-word bucket q: nonzero n_kv only
                q_total = 0.0
                n_q = 0
                for k, c in column.items():
                    boosted = row.get(k, 0) + alpha[k]
                    if k == y_d:
                        boosted += 1.0
                    q_total += boosted * c / (nk[k] + v_total)
                    q_topics[n_q] = k
                    q_cum[n_q] = q_total
                    n_q += 1

                target = u * (q_total + r_total + self._smooth_mass)
                if target < q_total:
                    k_new = q_topics[bisect_left(q_cum, target, 0, n_q)]
                elif target - q_total < r_total:
                    # materialise the doc bucket lazily — only on a hit
                    rem = target - q_total
                    acc = 0.0
                    k_new = -1
                    for k, c in row.items():
                        boosted = c + 1.0 if k == y_d else c
                        acc += boosted * gamma / (nk[k] + v_total)
                        k_new = k
                        if acc >= rem:
                            break
                    else:
                        if y_d >= 0 and y_d not in row:
                            k_new = y_d
                    if k_new < 0:
                        # drift pushed r_total above the true mass of an
                        # empty bucket; fall through to the smoothing draw
                        k_new = self._draw_smoothing(generator)
                else:
                    k_new = self._draw_smoothing(generator)

                # add the token back under its new topic
                topics[t] = k_new
                boost_new = 1.0 if k_new == y_d else 0.0
                count = row.get(k_new, 0)
                if count or boost_new:
                    r_total -= (count + boost_new) * gamma / (
                        nk[k_new] + v_total
                    )
                row[k_new] = count + 1
                column[k_new] = column.get(k_new, 0) + 1
                n_old = nk[k_new]
                nk[k_new] = n_old + 1
                self._smooth_mass += alpha_gamma[k_new] / (
                    n_old + 1 + v_total
                ) - alpha_gamma[k_new] / (n_old + v_total)
                r_total += (count + 1 + boost_new) * gamma / (
                    nk[k_new] + v_total
                )
                self._alias_age += 1
                t += 1
        if trace.is_enabled():
            metrics.registry.counter("kernel.alias_refresh").inc(
                self.alias_refreshes - refreshes_before
            )
        self._sync_out()

    def _sync_out(self) -> None:
        """Write the sparse mirrors back into the numpy count state."""
        counts = self.counts
        counts.n_dk[...] = 0
        for d, row in enumerate(self._rows):
            for k, c in row.items():
                counts.n_dk[d, k] = c
        counts.n_kv[...] = 0
        for v, column in enumerate(self._cols):
            for k, c in column.items():
                counts.n_kv[k, v] = c
        counts.n_k[...] = self._nk
        self.csr.token_topics[...] = self._topics


class AliasKernel(TokenKernel):
    """LightLDA-style Metropolis–Hastings kernel: O(1) per token.

    Instead of materialising the K-term conditional, each token gets
    **one** cheap proposal followed by an exact MH acceptance test
    against the true collapsed conditional (with the ``M_dk`` boost of
    the joint models), so the stationary distribution is exactly the
    conditional of equation (2) no matter how stale the proposal is.
    Proposal types alternate per token (and the phase flips every
    sweep), cycling the two factors of the conditional:

    word proposal
        ``q_w(k) ∝ (n_kv + γ) / (n_k + γV)`` drawn in O(1) from a
        per-word Walker alias table. Tables are built lazily on first
        use and allowed to serve up to ``alias_refresh`` draws before
        being rebuilt from the live counts (the staleness budget). The
        exact weights each table was built from are kept alongside it:
        the MH ratio must use the *proposal's own* (stale) weights,
        not the live counts, for the acceptance to stay exact.
    doc proposal
        ``q_d(k) ∝ n_dk + α_k`` (token-inclusive count) drawn in O(1)
        without any per-document table: with probability
        ``len(doc) / (len(doc) + Σα)`` pick the topic of a uniformly
        random token position of the document (the positions *are* an
        alias table for the count term), otherwise draw from a static
        Walker table over ``α``. Never stale — but state-dependent, so
        the Hastings ratio pairs the forward density with the
        *reverse-state* density; the token-inclusive +1 terms cancel
        and the ratio reduces to the exclusive doc counts.

    Per token exactly two uniforms are consumed (proposal + acceptance,
    batched per document), so the RNG stream is deterministic given the
    corpus layout. Statistically equivalent to the dense kernel, not
    bit-identical. Amortised cost per token is O(1 + K/alias_refresh),
    independent of K for the default budget ``max(4K, 256)``.
    """

    name = "alias"

    def __init__(
        self,
        csr: CSRTokens,
        counts: TopicCounts,
        alpha: np.ndarray,
        gamma: float,
        alias_refresh: int | None = None,
    ) -> None:
        super().__init__(csr, counts, alpha, gamma)
        n_topics = self.n_topics
        if alias_refresh is None:
            # amortise the O(K) table rebuild well below one op per
            # draw; MH acceptance corrects the extra staleness exactly
            alias_refresh = max(4 * n_topics, 256)
        if alias_refresh < 1:
            raise ModelError("alias_refresh must be >= 1")
        self._alias_refresh = alias_refresh
        self._rows: list[dict[int, int]] = [
            {k: int(c) for k, c in enumerate(row) if c}
            for row in counts.n_dk
        ]
        self._nvk: list[list[int]] = [
            [int(c) for c in column] for column in counts.n_kv.T
        ]
        self._nk: list[int] = [int(c) for c in counts.n_k]
        self._alpha_list: list[float] = [float(a) for a in self.alpha]
        self._alpha_sum: float = sum(self._alpha_list)
        self._words: list[int] = self.csr.token_words.tolist()
        self._topics: list[int] = self.csr.token_topics.tolist()
        self._offsets: list[int] = self.csr.doc_offsets.tolist()
        # Per-word Walker tables, built lazily on first proposal. The
        # weight list each table was built from is retained — the MH
        # ratio needs the stale proposal density, not the live counts.
        vocab_size = counts.vocab_size
        self._wprob: list[list[float] | None] = [None] * vocab_size
        self._walias: list[list[int] | None] = [None] * vocab_size
        self._wweight: list[list[float] | None] = [None] * vocab_size
        self._wage: list[int] = [0] * vocab_size
        # Static alias table over α for the doc proposal's prior part.
        self._aprob: list[float] = [1.0] * n_topics
        self._aalias: list[int] = list(range(n_topics))
        if n_topics > 1:
            build_alias_table(self._alpha_list, self._aprob, self._aalias)
        #: Flips every sweep so the word/doc proposal alternation also
        #: alternates per token *position* across sweeps.
        self._sweep_parity = 0
        #: Lifetime count of per-word alias-table (re)builds
        #: (observability surface; the tracer reports per-sweep deltas).
        self.alias_refreshes: int = 0

    def _rebuild_word_table(self, v: int) -> list[float]:
        """(Re)build word ``v``'s alias table from the live counts."""
        v_total, nk, gamma = self.v_total, self._nk, self.gamma
        weights = [
            (c + gamma) / (n + v_total) for c, n in zip(self._nvk[v], nk)
        ]
        prob = self._wprob[v]
        alias = self._walias[v]
        if prob is None or alias is None:
            n_topics = len(weights)
            prob = [1.0] * n_topics
            alias = list(range(n_topics))
            self._wprob[v] = prob
            self._walias[v] = alias
        if len(weights) > 1:
            build_alias_table(weights, prob, alias)
        self._wweight[v] = weights
        self._wage[v] = 0
        self.alias_refreshes += 1
        return weights

    def sweep(
        self, generator: np.random.Generator, y: np.ndarray | None = None
    ) -> None:
        rows, nvk, nk = self._rows, self._nvk, self._nk
        alpha, alpha_sum = self._alpha_list, self._alpha_sum
        gamma, v_total = self.gamma, self.v_total
        words, topics, offsets = self._words, self._topics, self._offsets
        wprob, walias = self._wprob, self._walias
        wweight, wage = self._wweight, self._wage
        aprob, aalias = self._aprob, self._aalias
        refresh = self._alias_refresh
        n_topics = len(nk)
        last = n_topics - 1
        parity = self._sweep_parity
        refreshes_before = self.alias_refreshes
        # Two uniforms per token (proposal + acceptance), drawn as one
        # batch per sweep: the bench corpora average ~1–2 tokens per
        # document, where a per-document generator call would dominate
        # the whole token budget. The kernel owns its RNG pattern, so
        # one deterministic batch is as reproducible as many.
        uniforms = generator.random(2 * self.csr.n_tokens).tolist()
        i = 0
        for d in range(self.csr.n_docs):
            start, end = offsets[d], offsets[d + 1]
            n_d = end - start
            row = rows[d]
            row_get = row.get
            y_d = -1 if y is None else int(y[d])
            doc_mass = n_d + alpha_sum
            for t in range(start, end):
                v = words[t]
                k_old = topics[t]
                # remove the token (the -dn superscript)
                count = row[k_old] - 1
                if count:
                    row[k_old] = count
                else:
                    del row[k_old]
                col = nvk[v]
                col[k_old] -= 1
                nk[k_old] -= 1
                u1 = uniforms[i]
                u2 = uniforms[i + 1]
                i += 2
                if (t + parity) & 1:
                    # -- word proposal from the (stale) alias table ----
                    weights_v = wweight[v]
                    if weights_v is None or wage[v] >= refresh:
                        weights_v = self._rebuild_word_table(v)
                    wage[v] += 1
                    scaled = u1 * n_topics
                    slot = int(scaled)
                    if slot > last:
                        slot = last
                    if scaled - slot < wprob[v][slot]:  # type: ignore[index]
                        k_new = slot
                    else:
                        k_new = walias[v][slot]  # type: ignore[index]
                    if k_new != k_old:
                        base_new = row_get(k_new, 0) + alpha[k_new]
                        base_old = row_get(k_old, 0) + alpha[k_old]
                        if k_new == y_d:
                            base_new += 1.0  # the M_dk term
                        elif k_old == y_d:
                            base_old += 1.0
                        p_new = (
                            base_new
                            * (col[k_new] + gamma)
                            / (nk[k_new] + v_total)
                        )
                        p_old = (
                            base_old
                            * (col[k_old] + gamma)
                            / (nk[k_old] + v_total)
                        )
                        # accept w.p. min(1, (p_new q(k_old))/(p_old q(k_new)))
                        if (
                            u2 * p_old * weights_v[k_new]
                            >= p_new * weights_v[k_old]
                        ):
                            k_new = k_old
                else:
                    # -- doc proposal: token positions + α table -------
                    scaled = u1 * doc_mass
                    if scaled < n_d:
                        k_new = topics[start + int(scaled)]
                    else:
                        # reuse the tail of the uniform for the α draw
                        ascaled = (scaled - n_d) / alpha_sum * n_topics
                        slot = int(ascaled)
                        if slot > last:
                            slot = last
                        if ascaled - slot < aprob[slot]:
                            k_new = slot
                        else:
                            k_new = aalias[slot]
                    if k_new != k_old:
                        # The draw itself uses token-inclusive counts
                        # (topics[t] still records k_old), but the
                        # Hastings ratio needs the *reverse-state*
                        # density q(k_old | token at k_new), where the
                        # +1 sits at k_new instead — so the inclusive
                        # terms cancel and both sides reduce to the
                        # exclusive counts. (Using the inclusive count
                        # for k_old, as LightLDA's printed formula does,
                        # measurably breaks detailed balance on short
                        # documents — the staleness chi-square test
                        # catches it.)
                        base_new = row_get(k_new, 0) + alpha[k_new]
                        base_old = row_get(k_old, 0) + alpha[k_old]
                        boost_new = base_new + 1.0 if k_new == y_d else base_new
                        boost_old = base_old + 1.0 if k_old == y_d else base_old
                        p_new = (
                            boost_new
                            * (col[k_new] + gamma)
                            / (nk[k_new] + v_total)
                        )
                        p_old = (
                            boost_old
                            * (col[k_old] + gamma)
                            / (nk[k_old] + v_total)
                        )
                        if u2 * p_old * base_new >= p_new * base_old:
                            k_new = k_old
                # add the token back under its (possibly new) topic
                topics[t] = k_new
                row[k_new] = row_get(k_new, 0) + 1
                col[k_new] += 1
                nk[k_new] += 1
        self._sweep_parity = parity ^ 1
        if trace.is_enabled():
            metrics.registry.counter("kernel.alias_refresh").inc(
                self.alias_refreshes - refreshes_before
            )
        self._sync_out()

    def _sync_out(self) -> None:
        """Write the sparse-row/dense-column mirrors back to numpy."""
        counts = self.counts
        counts.n_dk[...] = 0
        for d, row in enumerate(self._rows):
            for k, c in row.items():
                counts.n_dk[d, k] = c
        counts.n_kv.T[...] = self._nvk
        counts.n_k[...] = self._nk
        self.csr.token_topics[...] = self._topics


def shard_bounds(doc_offsets: np.ndarray, n_shards: int) -> list[tuple[int, int]]:
    """Token-balanced contiguous document shards.

    Splits ``[0, n_docs)`` into up to ``n_shards`` ranges whose token
    counts are as equal as the document boundaries allow (documents are
    never split across shards). Degenerate targets that would produce an
    empty shard are merged away, so every returned range is non-empty.
    """
    n_docs = len(doc_offsets) - 1
    n_tokens = int(doc_offsets[-1])
    n_shards = max(1, min(int(n_shards), n_docs))
    targets = np.linspace(0, n_tokens, n_shards + 1)
    cuts = np.searchsorted(doc_offsets, targets, side="left")
    cuts[0], cuts[-1] = 0, n_docs
    bounds: list[tuple[int, int]] = []
    lo = 0
    for cut in cuts[1:]:
        hi = int(cut)
        if hi <= lo:
            continue
        bounds.append((lo, hi))
        lo = hi
    if bounds and bounds[-1][1] != n_docs:
        lo, _ = bounds[-1]
        bounds[-1] = (lo, n_docs)
    return bounds or [(0, n_docs)]


def _shard_sweep_task(payload, rng):
    """One AD-LDA round on one shard (module-level for process pickling).

    Rebuilds shard-local CSR state and counts from the payload — the
    doc-topic rows are the shard's exact counts, the word-topic matrix a
    *stale* copy of the global one — runs one inner-kernel sweep, and
    returns ``(topics, n_dk, delta_n_kv)`` where the delta is measured
    against the stale matrix so the parent can merge exactly.

    Every array is copied before mutation, so thread and serial backends
    never write through to the parent's live state mid-round.
    """
    words, topics, offsets, n_dk, n_d, n_kv, n_k, alpha, gamma, y, inner = payload
    csr = CSRTokens(
        token_words=np.asarray(words, dtype=np.int32).copy(),
        token_topics=np.asarray(topics, dtype=np.int32).copy(),
        doc_offsets=np.asarray(offsets, dtype=np.int32),
    )
    counts = TopicCounts(csr.n_docs, n_kv.shape[0], n_kv.shape[1])
    counts.n_dk[:] = n_dk
    counts.n_d[:] = n_d
    counts.n_kv[:] = n_kv
    counts.n_k[:] = n_k
    kernel = make_kernel(inner, csr, counts, alpha, gamma)
    kernel.sweep(rng, y)
    delta = counts.n_kv - n_kv
    return csr.token_topics.copy(), counts.n_dk.copy(), delta


class DistributedKernel(TokenKernel):
    """AD-LDA: shard-local sweeps with per-round topic-count merges.

    Approximate Distributed LDA (Newman et al.): documents are split
    into token-balanced contiguous shards; each :meth:`sweep` runs one
    Gibbs sweep per shard *concurrently*, every shard sampling against a
    stale copy of the global word-topic counts, then merges the shards'
    count deltas back into the global matrices. Doc-topic rows are
    disjoint across shards, so they stay exact; the word-topic matrix is
    stale within a round and exact at every round boundary —
    ``counts.check()`` passes after each sweep.

    The result is statistically equivalent to a serial fit (pinned by
    the same NMI harness as the sparse/alias kernels), not
    bit-identical: within a round, shard ``i`` does not see shard
    ``j``'s moves. Shards draw from per-shard RNG streams pre-spawned
    from the sweep generator via :func:`repro.parallel.run_tasks`, so
    the fit is deterministic and backend-independent; the backend
    (serial / thread / process) comes from the ``parallel`` config.
    """

    name = "adlda"

    def __init__(
        self,
        csr: CSRTokens,
        counts: TopicCounts,
        alpha: np.ndarray,
        gamma: float,
        n_shards: int | None = None,
        parallel: "ParallelConfig | None" = None,
        inner: str = "dense",
    ) -> None:
        from repro.parallel import ParallelConfig

        super().__init__(csr, counts, alpha, gamma)
        if n_shards is None:
            n_shards = min(4, csr.n_docs)
        if n_shards < 1:
            raise ModelError("n_shards must be >= 1")
        if inner in ("adlda", "auto"):
            raise ModelError(f"invalid inner kernel {inner!r} for adlda")
        self.parallel = parallel or ParallelConfig(backend="serial")
        self.inner = inner
        self.bounds = shard_bounds(csr.doc_offsets, n_shards)
        self.n_shards = len(self.bounds)
        # Shard token imbalance (max/mean shard size) is fixed by the
        # bounds; computed once here, exported as a gauge per traced
        # sweep so dashboards see it alongside the merge health.
        shard_tokens = [
            int(csr.doc_offsets[hi]) - int(csr.doc_offsets[lo])
            for lo, hi in self.bounds
        ]
        mean_tokens = sum(shard_tokens) / max(1, len(shard_tokens))
        self.shard_imbalance = (
            max(shard_tokens) / mean_tokens if mean_tokens > 0 else 1.0
        )

    def sweep(
        self, generator: np.random.Generator, y: np.ndarray | None = None
    ) -> None:
        from repro.parallel import run_tasks

        counts, csr = self.counts, self.csr
        payloads = []
        for lo, hi in self.bounds:
            shard_csr = csr.shard(lo, hi)
            payloads.append(
                (
                    shard_csr.token_words,
                    shard_csr.token_topics,
                    shard_csr.doc_offsets,
                    counts.n_dk[lo:hi],
                    counts.n_d[lo:hi],
                    counts.n_kv,
                    counts.n_k,
                    self.alpha,
                    self.gamma,
                    None if y is None else np.asarray(y)[lo:hi],
                    self.inner,
                )
            )
        results = run_tasks(
            _shard_sweep_task, payloads, rng=generator, config=self.parallel
        )
        delta_total = np.zeros_like(counts.n_kv)
        for (lo, hi), (topics, n_dk, delta) in zip(self.bounds, results):
            t0, t1 = int(csr.doc_offsets[lo]), int(csr.doc_offsets[hi])
            csr.token_topics[t0:t1] = topics
            counts.n_dk[lo:hi] = n_dk
            delta_total += delta
        counts.n_kv += delta_total
        counts.n_k += delta_total.sum(axis=1)
        if trace.is_enabled():
            moved = int(np.abs(delta_total).sum() // 2)
            registry = metrics.registry
            registry.counter("sampler.adlda_merges").inc()
            # Merge staleness: the fraction of tokens that changed
            # topic within the round — how much of the word-topic
            # matrix every shard sampled against was already stale.
            registry.gauge("adlda.merge_staleness").set(
                moved / max(1, csr.n_tokens)
            )
            registry.gauge("adlda.shard_imbalance").set(
                self.shard_imbalance
            )
            trace.event(
                "adlda.merge",
                n_shards=self.n_shards,
                moved=moved,
            )


def select_kernel(
    n_topics: int, n_docs: int, n_tokens: int, vocab_size: int
) -> str:
    """The ``kernel="auto"`` policy: pick a concrete kernel from shape.

    The decision table (pinned by a unit test, re-derived from
    ``BENCH_sampler.json`` whenever the floors move):

    * small K (≤ 24): ``dense`` — the O(K) flat loop's constants beat
      every O(1) scheme while K is this small, and it stays
      bit-identical to the reference;
    * large K with an affordable table footprint: ``alias`` — the MH
      proposals are O(1) in K, so it wins as soon as dense's O(K) scan
      dominates;
    * large K with a huge ``V × K`` table footprint (> 64M cells):
      ``sparse`` — per-word alias tables would not fit comfortably, so
      fall back to the bucket decomposition whose memory follows the
      nonzero support instead.
    """
    if n_topics <= 24:
        return "dense"
    if vocab_size * n_topics > 64_000_000:
        return "sparse"
    return "alias"


def make_kernel(
    name: str,
    csr: CSRTokens,
    counts: TopicCounts,
    alpha: np.ndarray,
    gamma: float,
    n_shards: int | None = None,
    parallel: "ParallelConfig | None" = None,
) -> TokenKernel:
    """Instantiate the named token-sampling kernel over a flattened corpus.

    ``"auto"`` resolves through :func:`select_kernel` first (and bumps
    the ``sampler.kernel_selected`` counter when tracing is on).
    ``n_shards`` and ``parallel`` configure the ``"adlda"`` distributed
    kernel and are ignored by the single-stream kernels.
    """
    if name == "auto":
        name = select_kernel(
            counts.n_topics, csr.n_docs, csr.n_tokens, counts.vocab_size
        )
        logger.debug("kernel auto-selection picked %r", name)
        if trace.is_enabled():
            metrics.registry.counter("sampler.kernel_selected").inc()
    if name == "adlda":
        return DistributedKernel(
            csr, counts, alpha, gamma, n_shards=n_shards, parallel=parallel
        )
    if name == "alias":
        return AliasKernel(csr, counts, alpha, gamma)
    if name == "dense":
        return DenseKernel(csr, counts, alpha, gamma)
    if name == "legacy":
        return LegacyKernel(csr, counts, alpha, gamma)
    if name == "sparse":
        return SparseKernel(csr, counts, alpha, gamma)
    raise ModelError(f"unknown sampling kernel {name!r}")
