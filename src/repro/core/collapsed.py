"""Fully-collapsed variant of the joint model (extension, not in paper).

The paper's sampler (equations (2)–(4)) explicitly resamples each topic's
Gaussian parameters once per sweep. Integrating (μ_k, Λ_k) out instead
gives a Rao-Blackwellised sampler whose y-updates use the multivariate
Student-t predictive of the Normal–Wishart — typically better mixing at
the cost of per-document posterior bookkeeping. Provided as an ablation
(bench ``ablation A`` companions) and as a correctness cross-check: both
samplers must agree on the recovered structure.

Sufficient statistics per topic (count, sum, raw scatter) are maintained
incrementally, so a y-update costs O(K·dim³) rather than a full refit.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import gammaln, logsumexp

from repro.core import normal_wishart as nw
from repro.core.joint_model import JointModelConfig
from repro.core.kernels import CSRTokens, make_kernel, sample_from_cumulative
from repro.core.linalg import chol_inv_logdet, guarded_inv, symmetrize
from repro.core.lda import word_log_likelihood
from repro.core.priors import DirichletPrior, NormalWishartPrior
from repro.core.seeding import kmeans_plus_plus
from repro.core.state import TopicCounts, initialise_assignments, validate_docs
from repro.core.telemetry import should_sample, sweep_telemetry
from repro.errors import ModelError, NotFittedError
from repro.obs import trace
from repro.rng import RngLike, ensure_rng


@dataclass
class _SuffStats:
    """Incremental Gaussian sufficient statistics for one topic."""

    n: int
    total: np.ndarray          # Σ x
    scatter: np.ndarray        # Σ x xᵀ

    @classmethod
    def empty(cls, dim: int) -> "_SuffStats":
        return cls(n=0, total=np.zeros(dim), scatter=np.zeros((dim, dim)))

    def add(self, x: np.ndarray) -> None:
        self.n += 1
        self.total += x
        self.scatter += np.outer(x, x)

    def remove(self, x: np.ndarray) -> None:
        self.n -= 1
        self.total -= x
        self.scatter -= np.outer(x, x)
        if self.n < 0:
            raise ModelError("sufficient statistics went negative")
        # The scatter diagonal is a sum of squares, so a materially
        # negative entry means points were removed that were never added
        # — the same bookkeeping bug as n < 0, just caught through float
        # arithmetic. Allow cancellation noise proportional to the
        # removed point's magnitude.
        tolerance = 1e-9 * (1.0 + float(np.abs(x).max()) ** 2)
        if np.any(np.diagonal(self.scatter) < -tolerance):
            raise ModelError("sufficient statistics went negative")

    def posterior(self, prior: NormalWishartPrior) -> NormalWishartPrior:
        """NW posterior from the incremental statistics."""
        if self.n == 0:
            return prior
        mean = self.total / self.n
        centred_scatter = self.scatter - self.n * np.outer(mean, mean)
        dmean = mean - prior.mean
        kappa_c = prior.kappa + self.n
        scale_inv = (
            guarded_inv(prior.scale)
            + centred_scatter
            + (self.n * prior.kappa / kappa_c) * np.outer(dmean, dmean)
        )
        return NormalWishartPrior(
            mean=(self.n * mean + prior.kappa * prior.mean) / kappa_c,
            kappa=kappa_c,
            dof=prior.dof + self.n,
            scale=symmetrize(guarded_inv(scale_inv)),
        )


class _BatchedStudentT:
    """Cached Student-t predictives for all K topics, evaluated batched.

    The collapsed y-sweep evaluates every topic's predictive for every
    document, but a document move only changes *two* topics' sufficient
    statistics — so each topic's posterior factorisation is rebuilt
    lazily on invalidation. The per-topic caches are stored as stacked
    arrays (means ``(K, d)``, scale inverses ``(K, d, d)``…), which lets
    one einsum evaluate all K quadratic forms per document instead of a
    Python loop over topics.

    Rebuilds factor the posterior scale-inverse with a Cholesky
    decomposition (one factorisation yields both the log-determinant and
    the inverse), falling back to generic ``inv``/``slogdet`` if the
    matrix has drifted off the PD cone numerically.
    """

    def __init__(self, prior: NormalWishartPrior, n_topics: int) -> None:
        self.prior = prior
        self._prior_scale_inv = guarded_inv(prior.scale)
        d = prior.dim
        self._means = np.zeros((n_topics, d))
        self._inv_scale_t = np.zeros((n_topics, d, d))
        self._dof_t = np.ones(n_topics)
        self._norm = np.zeros(n_topics)
        self._fresh = np.zeros(n_topics, dtype=bool)
        # Monotonic per-topic build ids: every rebuild stamps a number
        # never used before, so a cached density row can validate each
        # entry by id equality alone. Ids are only ever *restored* to an
        # older value together with the exact factorisation bits they
        # stamped (see snapshot/restore), never reused for new bits.
        self._build = np.zeros(n_topics, dtype=np.int64)
        self._next_build = 1

    @property
    def build_versions(self) -> np.ndarray:
        """Per-topic factorisation version stamps (see ``__init__``)."""
        return self._build

    def invalidate(self, k: int) -> None:
        self._fresh[k] = False

    def snapshot(self, k: int):
        """Bitwise copy of topic ``k``'s factorisation state.

        Paired with :meth:`restore` around a speculative update: float
        remove-then-add does not round-trip (``(t - x) + x ≠ t``), so a
        self-move must put back the exact original bits — including the
        build id, which re-validates cache entries stamped against it.
        """
        return (
            self._means[k].copy(),
            self._inv_scale_t[k].copy(),
            float(self._dof_t[k]),
            float(self._norm[k]),
            bool(self._fresh[k]),
            int(self._build[k]),
        )

    def restore(self, k: int, snap) -> None:
        (
            self._means[k],
            self._inv_scale_t[k],
            self._dof_t[k],
            self._norm[k],
            self._fresh[k],
            self._build[k],
        ) = snap

    def _rebuild(self, k: int, stats: "_SuffStats") -> None:
        # Posterior parameters computed inline (equation (4)) — the
        # validated NormalWishartPrior constructor is far too slow for a
        # per-document hot path.
        prior = self.prior
        n = stats.n
        if n == 0:
            mean_c = prior.mean
            kappa_c, dof_c = prior.kappa, prior.dof
            scale_inv = self._prior_scale_inv
        else:
            mean = stats.total / n
            centred = stats.scatter - n * np.outer(mean, mean)
            dmean = mean - prior.mean
            kappa_c = prior.kappa + n
            dof_c = prior.dof + n
            mean_c = (stats.total + prior.kappa * prior.mean) / kappa_c
            scale_inv = (
                self._prior_scale_inv
                + centred
                + (n * prior.kappa / kappa_c) * np.outer(dmean, dmean)
            )
        d = mean_c.size
        dof_t = dof_c - d + 1.0
        factor = (kappa_c + 1.0) / (kappa_c * dof_t)
        # scale_t = scale_inv · factor  ⇒  inv(scale_t) = inv(scale_inv)/factor
        inv_scale_inv, logdet_scale_inv = chol_inv_logdet(scale_inv)
        self._inv_scale_t[k] = inv_scale_inv / factor
        logdet_t = (
            logdet_scale_inv
            + d * np.log(factor)  # repro: noqa[NUM002] - factor > 0: kappa_c, dof_t positive by prior validation
        )
        self._means[k] = mean_c
        self._dof_t[k] = float(dof_t)
        self._norm[k] = float(
            gammaln((dof_t + d) / 2.0)
            - gammaln(dof_t / 2.0)
            - 0.5 * (d * np.log(dof_t * np.pi) + logdet_t)  # repro: noqa[NUM002] - dof_t > 0 by prior validation
        )
        self._fresh[k] = True
        self._build[k] = self._next_build
        self._next_build += 1

    def refresh(self, stats: Sequence["_SuffStats"]) -> None:
        """Rebuild every stale topic from its sufficient statistics."""
        for k in np.flatnonzero(~self._fresh):
            self._rebuild(int(k), stats[k])

    def logpdf_all(
        self, stats: Sequence["_SuffStats"], x: np.ndarray
    ) -> np.ndarray:
        """All K topic predictive log-densities of ``x``, one einsum."""
        self.refresh(stats)
        diff = x - self._means                                    # (K, d)
        quad = np.einsum("ki,kij,kj->k", diff, self._inv_scale_t, diff)
        d = self._means.shape[1]
        return self._norm - 0.5 * (self._dof_t + d) * np.log1p(
            quad / self._dof_t
        )

    def logpdf_some(
        self, stats: Sequence["_SuffStats"], x: np.ndarray, idx: np.ndarray
    ) -> np.ndarray:
        """Predictive log-densities of ``x`` for the topic subset ``idx``.

        Entry-for-entry **bitwise equal** to the corresponding entries
        of :meth:`logpdf_all`: the einsum contraction and the follow-up
        elementwise arithmetic are per-row computations, so evaluating
        a row subset performs the identical IEEE operations per entry.
        This is what lets the density cache recompute only stale topics
        while staying bit-identical to the uncached sampler.
        """
        self.refresh(stats)
        means = self._means[idx]
        diff = x - means
        quad = np.einsum("ki,kij,kj->k", diff, self._inv_scale_t[idx], diff)
        d = self._means.shape[1]
        dof = self._dof_t[idx]
        return self._norm[idx] - 0.5 * (dof + d) * np.log1p(quad / dof)


class _CachedPredictive:
    """Single-topic view of :class:`_BatchedStudentT` (K = 1).

    Kept as the scalar API used by diagnostics and tests; the sampler
    itself uses the batched form directly.
    """

    def __init__(self, prior: NormalWishartPrior) -> None:
        self.prior = prior
        self._batch = _BatchedStudentT(prior, 1)

    def invalidate(self) -> None:
        self._batch.invalidate(0)

    def logpdf(self, stats: "_SuffStats", x: np.ndarray) -> float:
        return float(self._batch.logpdf_all([stats], x)[0])


class CollapsedJointModel:
    """Rao-Blackwellised joint model: Gaussians integrated out."""

    def __init__(self, config: JointModelConfig | None = None) -> None:
        self.config = config or JointModelConfig()
        self.phi_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None
        self.gel_means_: np.ndarray | None = None
        self.gel_covs_: np.ndarray | None = None
        self.emulsion_means_: np.ndarray | None = None
        self.emulsion_covs_: np.ndarray | None = None
        self.y_: np.ndarray | None = None
        #: Per-sweep collapsed pseudo-likelihood: word log-likelihood
        #: plus the leave-one-out Student-t log-density of each document
        #: under its sampled topic. Comparable across chains of the same
        #: data, which is all best-of-restarts selection needs.
        self.log_likelihoods_: list[float] = []
        self.fit_seconds_: float | None = None

    def fit(
        self,
        docs,
        gels: np.ndarray,
        emulsions: np.ndarray,
        vocab_size: int,
        rng: RngLike = None,
        gel_prior: NormalWishartPrior | None = None,
        emulsion_prior: NormalWishartPrior | None = None,
    ) -> "CollapsedJointModel":
        """Run the collapsed Gibbs sampler (best of ``n_restarts`` chains)."""
        with trace.span(
            "collapsed-model.fit",
            model="collapsed",
            n_topics=self.config.n_topics,
            n_sweeps=self.config.n_sweeps,
            n_restarts=self.config.n_restarts,
            kernel=self.config.kernel,
        ) as fit_span:
            if self.config.n_restarts > 1:
                self._fit_restarts(
                    docs, gels, emulsions, vocab_size, rng, gel_prior, emulsion_prior
                )
            else:
                self._fit_single(
                    docs, gels, emulsions, vocab_size, rng, gel_prior, emulsion_prior
                )
        self.fit_seconds_ = fit_span.duration_s
        return self

    def _fit_restarts(
        self, docs, gels, emulsions, vocab_size, rng, gel_prior, emulsion_prior
    ) -> "CollapsedJointModel":
        chains = run_chains(
            self.config,
            docs,
            gels,
            emulsions,
            vocab_size,
            n_chains=self.config.n_restarts,
            rng=rng,
            gel_prior=gel_prior,
            emulsion_prior=emulsion_prior,
        )
        best = max(chains, key=lambda chain: chain.log_likelihoods_[-1])
        for attr in (
            "phi_", "theta_", "gel_means_", "gel_covs_",
            "emulsion_means_", "emulsion_covs_", "y_", "log_likelihoods_",
        ):
            setattr(self, attr, getattr(best, attr))
        return self

    def _fit_single(
        self,
        docs,
        gels: np.ndarray,
        emulsions: np.ndarray,
        vocab_size: int,
        rng: RngLike = None,
        gel_prior: NormalWishartPrior | None = None,
        emulsion_prior: NormalWishartPrior | None = None,
    ) -> "CollapsedJointModel":
        cfg = self.config
        generator = ensure_rng(rng)
        gels = np.asarray(gels, dtype=float)
        emulsions = np.asarray(emulsions, dtype=float)
        n_docs = len(docs)
        if n_docs == 0:
            raise ModelError("no documents")
        validate_docs(docs, vocab_size)
        gel_prior = gel_prior or NormalWishartPrior.vague(gels, kappa=cfg.kappa)
        emulsion_prior = emulsion_prior or NormalWishartPrior.vague(
            emulsions, kappa=cfg.kappa
        )

        alpha = DirichletPrior(cfg.alpha).vector(cfg.n_topics)
        gamma, v_total = cfg.gamma, cfg.gamma * vocab_size
        k_range = cfg.n_topics

        counts = TopicCounts(n_docs, k_range, vocab_size)
        z = initialise_assignments(docs, counts, generator)
        # Flatten the ragged corpus once; the kernel owns the z-sweep.
        from repro.core.joint_model import _kernel_parallel

        kernel = make_kernel(
            cfg.kernel,
            CSRTokens.from_docs(docs, z),
            counts,
            alpha,
            gamma,
            n_shards=cfg.n_shards,
            parallel=_kernel_parallel(cfg),
        )
        if cfg.seed_y_with_kmeans:
            y = kmeans_plus_plus(gels, k_range, generator).astype(np.int64)
        else:
            y = generator.integers(0, k_range, size=n_docs).astype(np.int64)

        gel_stats = [_SuffStats.empty(gels.shape[1]) for _ in range(k_range)]
        emu_stats = [_SuffStats.empty(emulsions.shape[1]) for _ in range(k_range)]
        for d in range(n_docs):
            gel_stats[y[d]].add(gels[d])
            emu_stats[y[d]].add(emulsions[d])
        gel_pred = _BatchedStudentT(gel_prior, k_range)
        emu_pred = _BatchedStudentT(emulsion_prior, k_range)

        phi_acc = np.zeros((k_range, vocab_size))
        theta_acc = np.zeros((n_docs, k_range))
        y_votes = np.zeros((n_docs, k_range), dtype=np.int64)
        n_samples = 0
        self.log_likelihoods_ = []
        trace_enabled = trace.is_enabled()
        # (n_docs, K) density cache: dens_*[d, k] holds topic k's
        # predictive log-density of document d, valid while ver_*[d, k]
        # equals the topic's factorisation build id. Only topics whose
        # statistics changed since document d last looked are
        # recomputed — O(moves) instead of O(K) per document — and the
        # recompute path (logpdf_some) is bitwise equal to the full
        # logpdf_all evaluation, so the flag flips cost, not results.
        use_cache = cfg.cache_y_densities
        use_emu = cfg.use_emulsions
        if use_cache:
            dens_gel = np.zeros((n_docs, k_range))
            ver_gel = np.zeros((n_docs, k_range), dtype=np.int64)
            if use_emu:
                dens_emu = np.zeros((n_docs, k_range))
                ver_emu = np.zeros((n_docs, k_range), dtype=np.int64)

        for sweep in range(cfg.n_sweeps):
            # -- z updates (identical to the semi-collapsed sampler) --------
            if trace_enabled:
                sweep_started = time.perf_counter()
                kernel.sweep(generator, y)
                sweep_seconds = time.perf_counter() - sweep_started
            else:
                kernel.sweep(generator, y)

            # -- collapsed y updates: batched cached Student-t predictives --
            gauss_ll = 0.0
            for d in range(n_docs):
                k_old = int(y[d])
                # Snapshot topic k_old before the speculative removal:
                # if the draw lands back on k_old (most draws do, once
                # mixed), the exact pre-removal bits are restored —
                # float remove-then-add does not round-trip, and the
                # density cache needs the build id put back with them.
                old_gel = gel_stats[k_old]
                old_emu = emu_stats[k_old]
                stats_snap = (
                    old_gel.n, old_gel.total.copy(), old_gel.scatter.copy(),
                    old_emu.n, old_emu.total.copy(), old_emu.scatter.copy(),
                )
                pred_snap = (
                    gel_pred.snapshot(k_old), emu_pred.snapshot(k_old)
                )
                old_gel.remove(gels[d])
                old_emu.remove(emulsions[d])
                gel_pred.invalidate(k_old)
                emu_pred.invalidate(k_old)
                if use_cache:
                    gel_pred.refresh(gel_stats)
                    stale = np.flatnonzero(
                        ver_gel[d] != gel_pred.build_versions
                    )
                    if stale.size:
                        dens_gel[d, stale] = gel_pred.logpdf_some(
                            gel_stats, gels[d], stale
                        )
                        ver_gel[d, stale] = gel_pred.build_versions[stale]
                    gauss = dens_gel[d]
                    if use_emu:
                        emu_pred.refresh(emu_stats)
                        stale = np.flatnonzero(
                            ver_emu[d] != emu_pred.build_versions
                        )
                        if stale.size:
                            dens_emu[d, stale] = emu_pred.logpdf_some(
                                emu_stats, emulsions[d], stale
                            )
                            ver_emu[d, stale] = emu_pred.build_versions[stale]
                        gauss = gauss + dens_emu[d]
                else:
                    gauss = gel_pred.logpdf_all(gel_stats, gels[d])
                    if use_emu:
                        gauss = gauss + emu_pred.logpdf_all(
                            emu_stats, emulsions[d]
                        )
                logits = np.log(counts.n_dk[d] + alpha) + gauss  # repro: noqa[NUM002] - counts >= 0 and alpha > 0 (DirichletPrior)
                logits -= logsumexp(logits)
                cumulative = np.cumsum(np.exp(logits))
                k_new = sample_from_cumulative(cumulative, generator.random())
                y[d] = k_new
                gauss_ll += float(gauss[k_new])
                if k_new == k_old:
                    # self-move: restore the exact pre-removal state
                    (
                        old_gel.n, old_gel.total, old_gel.scatter,
                        old_emu.n, old_emu.total, old_emu.scatter,
                    ) = stats_snap
                    gel_pred.restore(k_old, pred_snap[0])
                    emu_pred.restore(k_old, pred_snap[1])
                else:
                    # k_old's factorisation was just rebuilt from the
                    # post-removal statistics, which are now its true
                    # statistics — no invalidation needed for it.
                    gel_stats[k_new].add(gels[d])
                    emu_stats[k_new].add(emulsions[d])
                    gel_pred.invalidate(k_new)
                    emu_pred.invalidate(k_new)

            self.log_likelihoods_.append(
                word_log_likelihood(docs, counts, alpha, gamma) + gauss_ll
            )
            if trace_enabled and should_sample(sweep, cfg.n_sweeps):
                sweep_telemetry(
                    "collapsed",
                    sweep,
                    cfg.n_sweeps,
                    self.log_likelihoods_[-1],
                    kernel.csr.n_tokens,
                    sweep_seconds,
                    kernel=kernel.name,
                )

            if sweep >= cfg.burn_in and (sweep - cfg.burn_in) % cfg.thin == 0:
                phi_acc += (counts.n_kv + gamma) / (counts.n_k[:, None] + v_total)
                m_dk = np.zeros((n_docs, k_range))
                m_dk[np.arange(n_docs), y] = 1.0
                theta_acc += (counts.n_dk + m_dk + alpha) / (
                    counts.n_d[:, None] + 1.0 + alpha.sum()
                )
                y_votes[np.arange(n_docs), y] += 1
                n_samples += 1

        scale = max(n_samples, 1)
        self.phi_ = phi_acc / scale
        self.theta_ = theta_acc / scale
        self.y_ = y_votes.argmax(axis=1)
        # report posterior-expected Gaussians for linkage compatibility
        gel_posts = [s.posterior(gel_prior) for s in gel_stats]
        emu_posts = [s.posterior(emulsion_prior) for s in emu_stats]
        self.gel_means_ = np.vstack([p.mean for p in gel_posts])
        self.gel_covs_ = np.stack(
            [guarded_inv(nw.expected_params(p).precision) for p in gel_posts]
        )
        self.emulsion_means_ = np.vstack([p.mean for p in emu_posts])
        self.emulsion_covs_ = np.stack(
            [guarded_inv(nw.expected_params(p).precision) for p in emu_posts]
        )
        return self

    # -- accessors mirroring the semi-collapsed model -------------------------

    @property
    def n_topics(self) -> int:
        return self.config.n_topics

    def topic_assignments(self) -> np.ndarray:
        """Hard per-recipe topic (argmax θ_d)."""
        if self.theta_ is None:
            raise NotFittedError("collapsed joint model")
        return np.asarray(self.theta_).argmax(axis=1)

    def topic_sizes(self) -> np.ndarray:
        """Recipes per topic."""
        return np.bincount(self.topic_assignments(), minlength=self.n_topics)

    def top_words(self, k: int, n: int = 10) -> list[tuple[int, float]]:
        """The ``n`` highest-probability word ids of topic ``k``."""
        if self.phi_ is None:
            raise NotFittedError("collapsed joint model")
        row = np.asarray(self.phi_)[k]
        order = np.argsort(row)[::-1][:n]
        return [(int(v), float(row[v])) for v in order]


# -- multi-chain cross-checking ------------------------------------------------


def _chain_task(payload, rng) -> "CollapsedJointModel":
    """Fit one collapsed chain (module-level so process pools can pickle it)."""
    config, docs, gels, emulsions, vocab_size, gel_prior, emulsion_prior = payload
    chain = CollapsedJointModel(config)
    chain._fit_single(
        docs, gels, emulsions, vocab_size, rng, gel_prior, emulsion_prior
    )
    return chain


def run_chains(
    config: JointModelConfig,
    docs,
    gels: np.ndarray,
    emulsions: np.ndarray,
    vocab_size: int,
    n_chains: int,
    rng: RngLike = None,
    gel_prior: NormalWishartPrior | None = None,
    emulsion_prior: NormalWishartPrior | None = None,
) -> list["CollapsedJointModel"]:
    """Fit ``n_chains`` independent collapsed chains, possibly in parallel.

    This is both the restart engine of :meth:`CollapsedJointModel.fit`
    and the cross-check primitive: fitting several chains and comparing
    their recovered partitions (e.g. pairwise NMI) is how the collapsed
    sampler is validated against the semi-collapsed one. The backend
    comes from ``config.backend``; chains draw from pre-spawned RNG
    streams, so the result list is identical across backends.
    """
    from repro.parallel import ParallelConfig, run_tasks

    if n_chains < 1:
        raise ModelError("n_chains must be >= 1")
    single = dataclasses.replace(config, n_restarts=1)
    payload = (
        single, list(docs), np.asarray(gels, dtype=float),
        np.asarray(emulsions, dtype=float), vocab_size,
        gel_prior, emulsion_prior,
    )
    return run_tasks(
        _chain_task,
        [payload] * n_chains,
        rng=rng,
        config=ParallelConfig(
            backend=config.backend, max_workers=config.n_workers
        ),
    )
