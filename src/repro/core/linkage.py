"""Topic ↔ empirical-study linkage (paper Section III-C.4).

"Kullback-Leibler divergence is applied for deriving [the] most similar
topic to the settings of the research. Then, the quantitative texture is
linked to corresponding texture terms […] in the topics. […] only the
gel ingredient concentrations are used for the comparison."

A :class:`TopicLinker` wraps a fitted joint model's gel Gaussians; its
:meth:`link_setting` / :meth:`link_dish` find the nearest topic for a
Table I setting or a Table II(b) dish, producing the "Table I" column of
Table II(a) and the "Assigned topic" column of Table II(b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LinkageError, NotFittedError
from repro.eval.divergence import point_gaussian_kl
from repro.rheology.studies import DishStudy, EmpiricalSetting
from repro.units.convert import information_quantity

#: Default width of the point-setting Gaussian in −log space.
DEFAULT_POINT_SIGMA = 0.35


@dataclass(frozen=True)
class LinkageResult:
    """The outcome of linking one setting/dish to the topics."""

    name: str
    topic: int
    divergences: np.ndarray  # KL to every topic, index = topic id

    @property
    def divergence(self) -> float:
        """KL to the assigned topic."""
        return float(self.divergences[self.topic])

    def ranking(self) -> list[int]:
        """Topics ordered from most to least similar."""
        return [int(k) for k in np.argsort(self.divergences)]


class TopicLinker:
    """KL-divergence linkage from empirical settings to fitted topics."""

    def __init__(self, model, point_sigma: float = DEFAULT_POINT_SIGMA) -> None:
        if getattr(model, "gel_means_", None) is None:
            raise NotFittedError("joint topic model")
        if point_sigma <= 0:
            raise LinkageError("point_sigma must be positive")
        self.point_sigma = point_sigma
        self.gel_means = np.asarray(model.gel_means_)
        # Absent gels are a constant in −log space, so a pure topic's
        # covariance is near-singular along those axes and the KL trace
        # term would explode. The setting's widening σ is applied to both
        # sides: topic covariances are floored at σ²·I.
        covs = np.asarray(model.gel_covs_).copy()
        covs += (point_sigma**2) * np.eye(covs.shape[1])[None, :, :]
        self.gel_covs = covs

    @classmethod
    def from_arrays(
        cls,
        gel_means: np.ndarray,
        gel_covs: np.ndarray,
        point_sigma: float = DEFAULT_POINT_SIGMA,
    ) -> "TopicLinker":
        """Rebuild a linker from its serialised state.

        ``gel_covs`` must already carry the σ²·I floor applied by
        ``__init__`` (this is what :func:`repro.persistence.save_linker`
        stores), so no further widening happens here.
        """
        if point_sigma <= 0:
            raise LinkageError("point_sigma must be positive")
        linker = cls.__new__(cls)
        linker.point_sigma = float(point_sigma)
        linker.gel_means = np.asarray(gel_means)
        linker.gel_covs = np.asarray(gel_covs)
        if linker.gel_means.ndim != 2 or linker.gel_covs.shape != (
            linker.gel_means.shape[0],
            linker.gel_means.shape[1],
            linker.gel_means.shape[1],
        ):
            raise LinkageError("gel mean/covariance shapes are inconsistent")
        return linker

    @property
    def n_topics(self) -> int:
        return self.gel_means.shape[0]

    # -- core ------------------------------------------------------------------

    def divergences_from(self, gel_concentrations: np.ndarray) -> np.ndarray:
        """KL from a raw gel-concentration vector to every topic.

        The vector is transformed to −log space (the model's feature
        space) before comparison.
        """
        point = np.asarray(
            information_quantity(np.asarray(gel_concentrations, dtype=float))
        )
        if point.shape != self.gel_means[0].shape:
            raise LinkageError(
                f"gel vector has dim {point.size}, topics have "
                f"{self.gel_means.shape[1]}"
            )
        return np.array(
            [
                point_gaussian_kl(
                    point, self.gel_means[k], self.gel_covs[k], self.point_sigma
                )
                for k in range(self.n_topics)
            ]
        )

    def link(self, name: str, gel_concentrations: np.ndarray) -> LinkageResult:
        """Most similar topic for a raw gel-concentration vector."""
        divergences = self.divergences_from(gel_concentrations)
        return LinkageResult(
            name=name,
            topic=int(np.argmin(divergences)),
            divergences=divergences,
        )

    # -- convenience -------------------------------------------------------------

    def link_setting(self, setting: EmpiricalSetting) -> LinkageResult:
        """Link one Table I row."""
        return self.link(f"data {setting.data_id}", setting.gel_vector())

    def link_dish(self, dish: DishStudy) -> LinkageResult:
        """Link one Table II(b) dish (gel concentrations only, per paper)."""
        return self.link(dish.name, dish.gel_vector())

    def assignment_table(self, settings) -> dict[int, list[int]]:
        """Topic → list of Table I data ids (Table II(a)'s last column)."""
        table: dict[int, list[int]] = {}
        for setting in settings:
            result = self.link_setting(setting)
            table.setdefault(result.topic, []).append(setting.data_id)
        return table
