"""Shared sampler telemetry: per-sweep events, per-restart records.

All three Gibbs samplers (LDA, semi-collapsed joint, fully-collapsed
joint) report the same shape of runtime data: a per-sweep trace event
carrying the joint log-likelihood and the z-sweep throughput, and — for
restart fan-outs — one record per chain with its seed, wall-clock and
final likelihood. This module is that shape, written once.

The per-sweep helpers are **only called behind a
:func:`repro.obs.trace.is_enabled` guard** at a configurable sampling
interval (:func:`should_sample`), so the disabled path of every sampler
stays allocation-free and bit-identical: telemetry never touches the
model RNG stream.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.obs import metrics, trace


def should_sample(sweep: int, n_sweeps: int) -> bool:
    """Whether sweep ``sweep`` (0-based) emits an event this run.

    Every ``trace.sweep_interval()``-th sweep does, and the final sweep
    always does, so a trace never ends mid-silence.
    """
    every = trace.sweep_interval()
    return (sweep + 1) % every == 0 or sweep + 1 == n_sweeps


def sweep_telemetry(
    model: str,
    sweep: int,
    n_sweeps: int,
    log_likelihood: float,
    n_tokens: int,
    sweep_seconds: float,
    kernel: str | None = None,
) -> None:
    """Emit one per-sweep event and feed the sampler metrics.

    ``sweep_seconds`` is the z-sweep (kernel) wall-clock, so
    ``tokens_per_sec`` isolates the sampling hot loop from the Gaussian
    side of a sweep. ``kernel`` (the kernel's ``name`` attribute)
    additionally attributes the sweep time to a per-kernel histogram
    (``kernel.sweep_seconds.<name>``; registered by hand in
    :mod:`repro.obs.names` since the name is built dynamically).
    """
    tokens_per_sec = (
        n_tokens / sweep_seconds if sweep_seconds > 0.0 else 0.0
    )
    trace.event(
        "sweep",
        model=model,
        sweep=sweep,
        n_sweeps=n_sweeps,
        log_likelihood=float(log_likelihood),
        tokens_per_sec=tokens_per_sec,
        sweep_seconds=sweep_seconds,
        kernel=kernel,
    )
    registry = metrics.registry
    registry.counter("sampler.sweeps").inc()
    registry.gauge("sampler.sweep_log_likelihood").set(float(log_likelihood))
    if sweep_seconds > 0.0:
        registry.histogram("sampler.tokens_per_sec").observe(tokens_per_sec)
        registry.histogram("sampler.sweep_seconds").observe(sweep_seconds)
        if kernel is not None:
            registry.histogram(
                f"kernel.sweep_seconds.{kernel}"
            ).observe(sweep_seconds)


def generator_seed(rng: np.random.Generator) -> int | None:
    """The integer seed a generator was built from, when recoverable.

    Child streams made by :func:`repro.rng.spawn` are
    ``default_rng(int)``, whose seed survives as
    ``bit_generator.seed_seq.entropy``; generators seeded another way
    (or sent through pickling oddities) report ``None``.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    entropy = getattr(seed_seq, "entropy", None)
    if isinstance(entropy, (int, np.integer)) and not getattr(
        seed_seq, "spawn_key", ()
    ):
        return int(entropy)
    return None


def restart_telemetry(
    rng: np.random.Generator,
    fit_seconds: float,
    final_log_likelihood: float,
) -> dict[str, Any]:
    """One restart chain's record, picklable across process backends."""
    return {
        "seed": generator_seed(rng),
        "fit_seconds": float(fit_seconds),
        "final_log_likelihood": float(final_log_likelihood),
    }
