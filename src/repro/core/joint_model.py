"""The joint texture topic model (paper Sections III-B/III-C).

Each topic k owns three coupled distributions:

* φ_k — a categorical over texture terms (Dirichlet prior γ);
* (μ_k, Λ_k) — a Gaussian over *gel* concentration vectors in −log
  space (Normal–Wishart prior);
* (m_k, L_k) — a Gaussian over *emulsion* concentration vectors
  (Normal–Wishart prior).

Per recipe d, topic proportions θ_d ~ Dir(α) generate both the per-word
topics z_dn and the single document-level concentration topic y_d, which
emits the recipe's gel vector g_d and emulsion vector e_d. Sharing θ_d is
the paper's core coupling: texture-word patterns and concentration bands
must co-occur to form a topic.

Inference is the semi-collapsed Gibbs sampler of equations (2)–(4):
θ and φ are collapsed out; the Gaussians are explicitly resampled from
their Normal–Wishart posteriors once per sweep.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import logsumexp

from repro.core import normal_wishart as nw
from repro.core.kernels import KERNEL_CHOICES, CSRTokens, make_kernel
from repro.core.lda import word_log_likelihood
from repro.core.priors import DirichletPrior, NormalWishartPrior
from repro.core.seeding import kmeans_plus_plus
from repro.core.state import TopicCounts, initialise_assignments, validate_docs
from repro.core.telemetry import restart_telemetry, should_sample, sweep_telemetry
from repro.errors import ModelError, NotFittedError
from repro.obs import trace
from repro.obs.log import get_logger
from repro.rng import RngLike, ensure_rng

logger = get_logger("repro.core.joint_model")

#: Progress is logged every this many sweeps (at INFO level).
_LOG_EVERY = 50


@dataclass(frozen=True)
class JointModelConfig:
    """Configuration of the joint model and its Gibbs sampler."""

    n_topics: int = 10
    alpha: float = 1.0            # Dir(θ) hyperparameter
    gamma: float = 0.1            # Dir(φ) hyperparameter
    kappa: float = 0.1            # NW β: pseudo-count on Gaussian means
    n_sweeps: int = 400
    burn_in: int = 200
    thin: int = 5
    #: Include the emulsion channel in the y_d likelihood. Equation (3)
    #: of the paper prints only one Gaussian factor; the generative model
    #: of Fig 1 emits both g_d and e_d from y_d, which is what we use.
    use_emulsions: bool = True
    #: Seed y with k-means++ on the gel vectors instead of uniformly.
    seed_y_with_kmeans: bool = True
    #: Independent chains to run; the one with the best final joint
    #: log-likelihood wins. Gibbs chains on multimodal posteriors can
    #: settle in different label partitions; restarts are the standard
    #: cheap insurance.
    n_restarts: int = 1
    #: Execution backend for the restart fan-out: "serial", "thread",
    #: "process" or "auto" (see :mod:`repro.parallel`). Restart chains
    #: draw from pre-spawned RNG streams, so the fitted model is
    #: bit-identical across backends.
    backend: str = "serial"
    #: Worker cap for parallel backends (``None`` → one per CPU).
    n_workers: int | None = None
    #: Token-sampling kernel for the z-sweep: "dense" (default,
    #: bit-identical to the historical per-token loop), "legacy" (that
    #: loop itself, kept for benchmarking), "sparse" (SparseLDA
    #: buckets + alias table), "alias" (LightLDA Metropolis–Hastings,
    #: O(1) per token), "adlda" (AD-LDA distributed sweeps with
    #: per-round count merges — see ``n_shards``) or "auto" (pick from
    #: K and corpus shape). All but dense/legacy are statistically
    #: equivalent to dense, not bit-identical. See
    #: :mod:`repro.core.kernels`.
    kernel: str = "dense"
    #: Document shards for the "adlda" kernel (``None`` → min(4, D)).
    #: The shard fan-out runs on this config's ``backend``/``n_workers``
    #: executor; combining ``kernel="adlda"`` with ``n_restarts > 1`` on
    #: a process backend nests pools and is not recommended. Ignored by
    #: every other kernel.
    n_shards: int | None = None
    #: Cache the per-topic terms of the y-draw between sweeps, keyed on
    #: the sufficient statistics that feed them, so only topics whose
    #: membership changed are recomputed. Bit-identical to the uncached
    #: path (pure memoisation — the RNG stream is untouched); the flag
    #: exists for A/B verification and memory-constrained runs of the
    #: collapsed model, whose cache is O(n_docs × K).
    cache_y_densities: bool = True

    def __post_init__(self) -> None:
        from repro.parallel import BACKENDS

        if self.n_topics < 1:
            raise ModelError("n_topics must be >= 1")
        if not 0 <= self.burn_in < self.n_sweeps:
            raise ModelError("need 0 <= burn_in < n_sweeps")
        if self.thin < 1:
            raise ModelError("thin must be >= 1")
        if self.n_restarts < 1:
            raise ModelError("n_restarts must be >= 1")
        if self.backend not in BACKENDS:
            raise ModelError(f"unknown backend {self.backend!r}")
        if self.n_workers is not None and self.n_workers < 1:
            raise ModelError("n_workers must be >= 1")
        if self.kernel not in KERNEL_CHOICES:
            raise ModelError(f"unknown sampling kernel {self.kernel!r}")
        if self.n_shards is not None and self.n_shards < 1:
            raise ModelError("n_shards must be >= 1")


def _kernel_parallel(config: "JointModelConfig"):
    """Executor config for the adlda kernel's shard fan-out (else None)."""
    if config.kernel != "adlda":
        return None
    from repro.parallel import ParallelConfig

    return ParallelConfig(
        backend=config.backend, max_workers=config.n_workers
    )


def _restart_task(payload, rng) -> tuple["JointTextureTopicModel", dict]:
    """Fit one restart chain (module-level so process pools can pickle it).

    Returns the fitted candidate plus its telemetry record (seed, fit
    seconds, final log-likelihood) — a plain dict, so process-backend
    workers ship it back to the parent instead of dropping it.
    """
    config, docs, gels, emulsions, vocab_size, gel_prior, emulsion_prior = payload
    with trace.span("joint-model.restart", kernel=config.kernel) as restart_span:
        candidate = JointTextureTopicModel(config)
        candidate._fit_single(
            docs, gels, emulsions, vocab_size, rng, gel_prior, emulsion_prior
        )
    return candidate, restart_telemetry(
        rng,
        restart_span.duration_s,
        candidate.log_likelihoods_[-1],
    )


class JointTextureTopicModel:
    """The paper's joint topic model with Gibbs inference.

    After :meth:`fit`, the estimates of equation (5) are available:

    * ``phi_`` — (K, V) texture-term distributions per topic;
    * ``theta_`` — (D, K) per-recipe topic distributions;
    * ``gel_means_`` / ``gel_covs_`` — posterior-averaged gel Gaussians
      per topic, in −log concentration space;
    * ``emulsion_means_`` / ``emulsion_covs_`` — ditto for emulsions;
    * ``y_`` — hard document concentration-topic assignments;
    * ``log_likelihoods_`` — per-sweep joint log-likelihood trace.
    """

    def __init__(self, config: JointModelConfig | None = None) -> None:
        self.config = config or JointModelConfig()
        self.phi_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None
        self.gel_means_: np.ndarray | None = None
        self.gel_covs_: np.ndarray | None = None
        self.emulsion_means_: np.ndarray | None = None
        self.emulsion_covs_: np.ndarray | None = None
        self.y_: np.ndarray | None = None
        self.log_likelihoods_: list[float] = []
        #: Wall-clock seconds of the last :meth:`fit` call and of each
        #: restart chain within it (benchmarks export these). Both are
        #: read from the same spans the tracer exports.
        self.fit_seconds_: float | None = None
        self.restart_seconds_: list[float] = []
        #: Per-restart records (``seed``, ``fit_seconds``,
        #: ``final_log_likelihood``), propagated from the workers of any
        #: backend — including process pools — in submission order.
        self.restart_telemetry_: list[dict] = []

    # -- fitting ---------------------------------------------------------------

    def fit(
        self,
        docs: Sequence[np.ndarray],
        gels: np.ndarray,
        emulsions: np.ndarray,
        vocab_size: int,
        rng: RngLike = None,
        gel_prior: NormalWishartPrior | None = None,
        emulsion_prior: NormalWishartPrior | None = None,
    ) -> "JointTextureTopicModel":
        """Run the Gibbs sampler (best of ``n_restarts`` chains).

        ``docs`` are integer word-id arrays (texture-term sequences);
        ``gels`` is (D, 3) and ``emulsions`` (D, 6), both in −log
        concentration space. Priors default to the empirical-Bayes vague
        prior of :meth:`NormalWishartPrior.vague`.
        """
        with trace.span(
            "joint-model.fit",
            model="gibbs",
            n_topics=self.config.n_topics,
            n_sweeps=self.config.n_sweeps,
            n_restarts=self.config.n_restarts,
            kernel=self.config.kernel,
        ) as fit_span:
            if self.config.n_restarts > 1:
                self._fit_restarts(
                    docs, gels, emulsions, vocab_size, rng, gel_prior, emulsion_prior
                )
            else:
                self._fit_single(
                    docs, gels, emulsions, vocab_size, rng, gel_prior, emulsion_prior
                )
        self.fit_seconds_ = fit_span.duration_s
        if not self.restart_seconds_:
            self.restart_seconds_ = [self.fit_seconds_]
        return self

    def _fit_restarts(
        self, docs, gels, emulsions, vocab_size, rng, gel_prior, emulsion_prior
    ) -> "JointTextureTopicModel":
        from repro.parallel import ParallelConfig, run_tasks

        single = dataclasses.replace(self.config, n_restarts=1)
        payload = (
            single, list(docs), gels, emulsions, vocab_size,
            gel_prior, emulsion_prior,
        )
        outcomes = run_tasks(
            _restart_task,
            [payload] * self.config.n_restarts,
            rng=rng,
            config=ParallelConfig(
                backend=self.config.backend,
                max_workers=self.config.n_workers,
            ),
        )
        best: JointTextureTopicModel | None = None
        self.restart_seconds_ = []
        self.restart_telemetry_ = []
        for candidate, telemetry in outcomes:
            self.restart_seconds_.append(telemetry["fit_seconds"])
            self.restart_telemetry_.append(telemetry)
            if (
                best is None
                or candidate.log_likelihoods_[-1] > best.log_likelihoods_[-1]
            ):
                best = candidate
        assert best is not None
        for attr in (
            "phi_", "theta_", "gel_means_", "gel_covs_",
            "emulsion_means_", "emulsion_covs_", "y_", "log_likelihoods_",
        ):
            setattr(self, attr, getattr(best, attr))
        return self

    def _fit_single(
        self,
        docs: Sequence[np.ndarray],
        gels: np.ndarray,
        emulsions: np.ndarray,
        vocab_size: int,
        rng: RngLike = None,
        gel_prior: NormalWishartPrior | None = None,
        emulsion_prior: NormalWishartPrior | None = None,
    ) -> "JointTextureTopicModel":
        cfg = self.config
        generator = ensure_rng(rng)
        gels = np.asarray(gels, dtype=float)
        emulsions = np.asarray(emulsions, dtype=float)
        n_docs = len(docs)
        if n_docs == 0:
            raise ModelError("no documents")
        if gels.shape[0] != n_docs or emulsions.shape[0] != n_docs:
            raise ModelError("gels/emulsions must have one row per document")
        validate_docs(docs, vocab_size)

        gel_prior = gel_prior or NormalWishartPrior.vague(gels, kappa=cfg.kappa)
        emulsion_prior = emulsion_prior or NormalWishartPrior.vague(
            emulsions, kappa=cfg.kappa
        )

        alpha = DirichletPrior(cfg.alpha).vector(cfg.n_topics)
        gamma, v_total = cfg.gamma, cfg.gamma * vocab_size
        k_range = cfg.n_topics

        counts = TopicCounts(n_docs, k_range, vocab_size)
        z = initialise_assignments(docs, counts, generator)
        # Flatten the ragged corpus once; the kernel owns the z-sweep.
        kernel = make_kernel(
            cfg.kernel,
            CSRTokens.from_docs(docs, z),
            counts,
            alpha,
            gamma,
            n_shards=cfg.n_shards,
            parallel=_kernel_parallel(cfg),
        )
        # Seed y with k-means++ on the gel vectors (see repro.core.seeding
        # for why a uniform start mixes badly) unless configured otherwise.
        if cfg.seed_y_with_kmeans:
            y = kmeans_plus_plus(gels, k_range, generator).astype(np.int64)
        else:
            y = generator.integers(0, k_range, size=n_docs).astype(np.int64)

        # accumulators for the post-burn-in averages of equation (5)
        phi_acc = np.zeros((k_range, vocab_size))
        theta_acc = np.zeros((n_docs, k_range))
        gel_mean_acc = np.zeros((k_range, gels.shape[1]))
        gel_cov_acc = np.zeros((k_range, gels.shape[1], gels.shape[1]))
        emu_mean_acc = np.zeros((k_range, emulsions.shape[1]))
        emu_cov_acc = np.zeros((k_range, emulsions.shape[1], emulsions.shape[1]))
        y_votes = np.zeros((n_docs, k_range), dtype=np.int64)
        n_samples = 0
        self.log_likelihoods_ = []
        trace_enabled = trace.is_enabled()
        # Per-topic NW posterior cache, keyed on topic membership: a
        # posterior depends only on {d : y_d = k}, so after a y-sweep
        # only topics that gained or lost documents need recomputing.
        # Pure memoisation — identical posteriors, identical RNG stream
        # — hence bit-identical to the uncached path.
        use_cache = cfg.cache_y_densities
        gel_post: list[NormalWishartPrior | None] = [None] * k_range
        emu_post: list[NormalWishartPrior | None] = [None] * k_range
        prev_y: np.ndarray | None = None

        for sweep in range(cfg.n_sweeps):
            # -- equation (4): resample topic Gaussians given y ------------
            if use_cache and prev_y is not None:
                moved = prev_y != y
                stale = np.unique(np.concatenate((prev_y[moved], y[moved])))
            else:
                stale = np.arange(k_range)
            for k in stale:
                members = y == k
                gel_post[k] = nw.posterior(gel_prior, gels[members])
                emu_post[k] = nw.posterior(emulsion_prior, emulsions[members])
            prev_y = y.copy()
            gel_params = [
                nw.sample(gel_post[k], generator) for k in range(k_range)
            ]
            emu_params = [
                nw.sample(emu_post[k], generator) for k in range(k_range)
            ]
            # per-doc Gaussian log-likelihood matrix, fixed for the sweep:
            # all K topics evaluated in one batched einsum/slogdet
            log_gel = nw.batch_log_density(gel_params, gels)
            if cfg.use_emulsions:
                log_gel = log_gel + nw.batch_log_density(emu_params, emulsions)

            # -- equation (2): per-token z updates ---------------------------
            if trace_enabled:
                sweep_started = time.perf_counter()
                kernel.sweep(generator, y)
                sweep_seconds = time.perf_counter() - sweep_started
            else:
                kernel.sweep(generator, y)

            # -- equation (3): y updates (independent across docs given the
            # collapsed θ, so drawn as one vectorised categorical batch) ----
            logits = np.log(counts.n_dk + alpha) + log_gel  # repro: noqa[NUM002] - counts >= 0 and alpha > 0 (DirichletPrior)
            logits -= logsumexp(logits, axis=1, keepdims=True)
            cumulative = np.cumsum(np.exp(logits), axis=1)
            draws = generator.random(n_docs) * cumulative[:, -1]
            y = np.minimum(
                (cumulative < draws[:, None]).sum(axis=1), k_range - 1
            ).astype(np.int64)

            self.log_likelihoods_.append(
                word_log_likelihood(docs, counts, alpha, gamma)
                + float(log_gel[np.arange(n_docs), y].sum())
            )
            if trace_enabled and should_sample(sweep, cfg.n_sweeps):
                sweep_telemetry(
                    "gibbs",
                    sweep,
                    cfg.n_sweeps,
                    self.log_likelihoods_[-1],
                    kernel.csr.n_tokens,
                    sweep_seconds,
                    kernel=kernel.name,
                )
            if (sweep + 1) % _LOG_EVERY == 0 or sweep + 1 == cfg.n_sweeps:
                logger.info(
                    "sweep %d/%d log-likelihood %.1f",
                    sweep + 1,
                    cfg.n_sweeps,
                    self.log_likelihoods_[-1],
                )

            # -- equation (5): accumulate estimates --------------------------
            if sweep >= cfg.burn_in and (sweep - cfg.burn_in) % cfg.thin == 0:
                phi_acc += (counts.n_kv + gamma) / (counts.n_k[:, None] + v_total)
                m_dk = np.zeros((n_docs, k_range))
                m_dk[np.arange(n_docs), y] = 1.0
                theta_acc += (counts.n_dk + m_dk + alpha) / (
                    counts.n_d[:, None] + 1.0 + alpha.sum()
                )
                for k in range(k_range):
                    gel_mean_acc[k] += gel_params[k].mean
                    gel_cov_acc[k] += gel_params[k].covariance
                    emu_mean_acc[k] += emu_params[k].mean
                    emu_cov_acc[k] += emu_params[k].covariance
                y_votes[np.arange(n_docs), y] += 1
                n_samples += 1

        scale = max(n_samples, 1)
        self.phi_ = phi_acc / scale
        self.theta_ = theta_acc / scale
        self.gel_means_ = gel_mean_acc / scale
        self.gel_covs_ = gel_cov_acc / scale
        self.emulsion_means_ = emu_mean_acc / scale
        self.emulsion_covs_ = emu_cov_acc / scale
        self.y_ = y_votes.argmax(axis=1)
        return self

    # -- fitted accessors ----------------------------------------------------

    @property
    def n_topics(self) -> int:
        return self.config.n_topics

    def _require_fit(self) -> None:
        if self.theta_ is None:
            raise NotFittedError("joint topic model")

    def topic_assignments(self) -> np.ndarray:
        """Hard per-recipe topic: argmax of θ_d (paper Section V-A)."""
        self._require_fit()
        return np.asarray(self.theta_).argmax(axis=1)

    def topic_sizes(self) -> np.ndarray:
        """Recipes per topic under :meth:`topic_assignments` (the
        "# Recipes" column of Table II(a))."""
        assignment = self.topic_assignments()
        return np.bincount(assignment, minlength=self.n_topics)

    def top_words(self, k: int, n: int = 10) -> list[tuple[int, float]]:
        """The ``n`` highest-probability word ids of topic ``k``."""
        self._require_fit()
        row = np.asarray(self.phi_)[k]
        order = np.argsort(row)[::-1][:n]
        return [(int(v), float(row[v])) for v in order]

    def gel_concentration_means(self) -> np.ndarray:
        """Topic gel means mapped back from −log space to ratios.

        This is the "gels:concentration" column of Table II(a):
        exp(−μ_k) per gel component.
        """
        self._require_fit()
        return np.exp(-np.asarray(self.gel_means_))

    def emulsion_concentration_means(self) -> np.ndarray:
        """Topic emulsion means mapped back to concentration ratios."""
        self._require_fit()
        return np.exp(-np.asarray(self.emulsion_means_))
