"""Guarded linear algebra for covariance and precision matrices.

Every matrix inverse and log-determinant in this package flows through
this module — a discipline enforced mechanically by the ``NUM001``
static-analysis rule (see :mod:`repro.analysis`). The point is not to
change the numbers: on healthy input :func:`guarded_inv` and
:func:`guarded_slogdet` are *bit-identical* to the raw
``np.linalg.inv`` / ``np.linalg.slogdet`` calls they replace, so the
pinned regression tests from the parallel-inference work keep holding.
What changes is the failure mode. Scatter matrices assembled from
near-duplicate gel vectors (or topics that momentarily own a single
document) drift onto the boundary of the PD cone, where a raw ``inv``
either raises ``LinAlgError`` mid-sweep or silently returns ``inf``/
``nan`` that poison every statistic downstream. The guarded helpers
degrade instead: symmetrise, ridge-regularise with a jitter scaled to
the matrix's own diagonal, and as a last resort fall back to the
Moore–Penrose pseudo-inverse.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

__all__ = [
    "chol_inv_logdet",
    "guarded_inv",
    "guarded_slogdet",
    "pd_logdet",
    "symmetrize",
]


def symmetrize(a: np.ndarray) -> np.ndarray:
    """``(a + aᵀ) / 2`` along the last two axes (batch-friendly)."""
    a = np.asarray(a, dtype=float)
    return 0.5 * (a + np.swapaxes(a, -1, -2))


def _diag_scale(a: np.ndarray) -> np.ndarray:
    """Per-matrix magnitude of the diagonal, floored at 1, for jitter
    that is proportionate to the matrix instead of absolute."""
    diag = np.abs(np.einsum("...ii->...i", a)).mean(axis=-1)
    return np.maximum(diag, 1.0)[..., None, None]


def guarded_inv(
    a: np.ndarray, jitter: float = 1e-10, max_tries: int = 4
) -> np.ndarray:
    """Matrix inverse with a graceful path off the PD cone.

    The fast path is a plain ``np.linalg.inv`` — bit-identical to the
    direct call whenever the input is comfortably invertible, which is
    every healthy iteration. If that raises ``LinAlgError`` or produces
    non-finite entries, the input is symmetrised and ridge-regularised
    with exponentially growing jitter scaled to its mean diagonal; if
    even that fails, the Hermitian pseudo-inverse is returned. Works on
    a single ``(d, d)`` matrix or a stacked ``(..., d, d)`` batch.
    """
    a = np.asarray(a, dtype=float)
    if a.ndim < 2 or a.shape[-1] != a.shape[-2]:
        raise ModelError(f"guarded_inv expects square matrices, got {a.shape}")
    try:
        out = np.linalg.inv(a)
        if np.all(np.isfinite(out)):
            return out
    except np.linalg.LinAlgError:
        pass
    sym = symmetrize(a)
    eye = np.eye(a.shape[-1])
    scale = _diag_scale(sym)
    for attempt in range(max_tries):
        ridge = jitter * (10.0**attempt) * scale
        try:
            out = np.linalg.inv(sym + ridge * eye)
        except np.linalg.LinAlgError:
            continue
        if np.all(np.isfinite(out)):
            return out
    return np.linalg.pinv(sym, hermitian=True)


def guarded_slogdet(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(sign, log|det a|)`` along the last two axes.

    A thin, centralised wrapper: callers keep their own positivity
    checks (error types differ by API surface), but routing through here
    means NUM001 has a single module to audit when the guard policy
    changes.
    """
    a = np.asarray(a, dtype=float)
    sign, logdet = np.linalg.slogdet(a)
    return sign, logdet


def pd_logdet(a: np.ndarray, what: str = "matrix") -> np.ndarray:
    """log-determinant of a matrix required to be positive definite.

    Raises :class:`~repro.errors.ModelError` naming ``what`` when any
    sign is non-positive; otherwise returns the log-determinant(s).
    """
    sign, logdet = guarded_slogdet(a)
    if np.any(sign <= 0):
        raise ModelError(f"{what} is not positive definite")
    return logdet


def chol_inv_logdet(a: np.ndarray) -> tuple[np.ndarray, float]:
    """``(a⁻¹, log det a)`` via one Cholesky factorisation.

    The factorisation yields both quantities in a single ``O(d³)`` pass
    — the hot-path trick the collapsed sampler's predictive cache
    relies on. Off the PD cone it falls back to the generic guarded
    inverse and ``slogdet`` instead of raising.
    """
    a = np.asarray(a, dtype=float)
    try:
        chol = np.linalg.cholesky(a)
    except np.linalg.LinAlgError:
        _, logdet = guarded_slogdet(a)
        return guarded_inv(a), float(logdet)
    logdet = 2.0 * float(
        np.log(np.diagonal(chol)).sum()  # repro: noqa[NUM002] - Cholesky diagonal is strictly positive
    )
    half = np.linalg.solve(chol, np.eye(a.shape[-1]))  # L⁻¹
    return half.T @ half, logdet  # (L Lᵀ)⁻¹ = L⁻ᵀ L⁻¹
