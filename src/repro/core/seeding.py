"""k-means++ seeding for mixture initialisation.

Finite-mixture Gibbs samplers are notoriously sticky: starting from a
uniform random assignment, two well-separated concentration clusters can
share a topic for thousands of sweeps because no single document gains by
moving to an empty component with a prior-sampled Gaussian. Seeding the
document concentration topics with a few Lloyd iterations of k-means++
removes that failure mode without biasing the stationary distribution
(it only changes the chain's starting point).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.rng import RngLike, ensure_rng


def kmeans_plus_plus(
    data: np.ndarray,
    n_clusters: int,
    rng: RngLike = None,
    n_iter: int = 10,
) -> np.ndarray:
    """Cluster rows of ``data``; returns integer labels.

    Standard k-means++ seeding followed by ``n_iter`` Lloyd iterations.
    Empty clusters are reseeded from the point farthest from its centre.
    """
    generator = ensure_rng(rng)
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or data.shape[0] < n_clusters:
        raise ModelError("need (n, dim) data with n >= n_clusters")
    n = data.shape[0]

    # -- seeding -----------------------------------------------------------
    centres = [data[int(generator.integers(n))]]
    for _ in range(1, n_clusters):
        d2 = np.min(
            [np.sum((data - c) ** 2, axis=1) for c in centres], axis=0
        )
        total = d2.sum()
        if total <= 0.0:
            centres.append(data[int(generator.integers(n))])
            continue
        cumulative = np.cumsum(d2)
        draw = generator.random() * total
        centres.append(data[int(np.searchsorted(cumulative, draw))])
    centres = np.array(centres)

    # -- Lloyd -------------------------------------------------------------
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max(n_iter, 1)):
        distances = ((data[:, None, :] - centres[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        for k in range(n_clusters):
            members = data[labels == k]
            if len(members):
                centres[k] = members.mean(axis=0)
            else:  # reseed an empty cluster on the worst-fit point
                worst = int(distances.min(axis=1).argmax())
                centres[k] = data[worst]
                labels[worst] = k
    return labels
