"""Concentration → texture rule mining (the paper's stated future work).

The conclusion announces: "we will detect rules bridging between recipe
information including ingredient concentrations […] and sensory textures
of consumers." This module implements a first, transparent version over
a featurised dataset: for every (ingredient, texture term) pair it
contrasts the ingredient's concentration in recipes that *use* the term
against recipes that don't, and keeps the pairs with a large
standardised effect (Cohen's d in −log concentration space).

Rules read like: *"recipes described as `katai` use markedly more
gelatin (2.6 % vs 0.9 %)"*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.rheology.gel_system import EMULSION_NAMES, GEL_NAMES


@dataclass(frozen=True)
class TextureRule:
    """One mined (term, ingredient) association."""

    term: str
    ingredient: str
    direction: int                  # +1: more ingredient ⇒ term; −1: less
    effect_size: float              # |Cohen's d| in −log concentration space
    #: geometric-mean concentration in term recipes (consistent with the
    #: −log feature space the effect is measured in; an absent ingredient
    #: contributes its 1e-6 floor, so these are corpus-level tendencies)
    mean_with: float
    mean_without: float             # geometric-mean concentration elsewhere
    support: int                    # recipes using the term

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        more = "more" if self.direction > 0 else "less"
        return (
            f"'{self.term}' recipes use {more} {self.ingredient} "
            f"({self.mean_with:.4f} vs {self.mean_without:.4f}, "
            f"d={self.effect_size:.2f}, n={self.support})"
        )


def _cohens_d(a: np.ndarray, b: np.ndarray) -> float:
    na, nb = len(a), len(b)
    if na < 2 or nb < 2:
        return 0.0
    va, vb = a.var(ddof=1), b.var(ddof=1)
    pooled = ((na - 1) * va + (nb - 1) * vb) / (na + nb - 2)
    if pooled <= 0.0:
        return 0.0
    return float((a.mean() - b.mean()) / np.sqrt(pooled))


class RuleMiner:
    """Mines concentration↔term rules from a featurised dataset.

    Parameters
    ----------
    min_support:
        Minimum number of recipes using a term for it to be considered.
    min_effect:
        Minimum |Cohen's d| for a rule to be reported.
    """

    def __init__(self, min_support: int = 10, min_effect: float = 0.8) -> None:
        if min_support < 2:
            raise ReproError("min_support must be >= 2")
        self.min_support = min_support
        self.min_effect = min_effect

    def mine(self, dataset) -> list[TextureRule]:
        """Mine rules from a :class:`~repro.pipeline.dataset.TextureDataset`.

        Concentrations are compared in −log space (the model's feature
        space) but reported as raw mean ratios; effects are sorted
        strongest first.
        """
        features = dataset.features
        if not features:
            raise ReproError("empty dataset")
        log_matrix = np.hstack([dataset.gel_log, dataset.emulsion_log])
        ingredients = tuple(GEL_NAMES) + tuple(EMULSION_NAMES)

        rules: list[TextureRule] = []
        for term in dataset.vocabulary:
            uses = np.array(
                [term in f.term_counts for f in features], dtype=bool
            )
            support = int(uses.sum())
            if support < self.min_support or support > len(features) - 2:
                continue
            for column, ingredient in enumerate(ingredients):
                d = _cohens_d(log_matrix[uses, column], log_matrix[~uses, column])
                if abs(d) < self.min_effect:
                    continue
                rules.append(
                    TextureRule(
                        term=term,
                        ingredient=ingredient,
                        # −log space: smaller value = higher concentration
                        direction=-1 if d > 0 else 1,
                        effect_size=abs(d),
                        mean_with=float(
                            np.exp(-log_matrix[uses, column].mean())
                        ),
                        mean_without=float(
                            np.exp(-log_matrix[~uses, column].mean())
                        ),
                        support=support,
                    )
                )
        rules.sort(key=lambda r: -r.effect_size)
        return rules

    def rules_for_term(self, dataset, term: str) -> list[TextureRule]:
        """Rules involving one specific term."""
        return [r for r in self.mine(dataset) if r.term == term]

    @staticmethod
    def render(rules: Sequence[TextureRule], limit: int = 20) -> str:
        """Plain-text rule listing."""
        lines = [str(rule) for rule in rules[:limit]]
        return "\n".join(lines) if lines else "(no rules above thresholds)"
