"""Category-consistency validation of topic→rheology linkages.

Section III-C.4: "the linkages are validated by referring to the
dictionary […] where each texture term is annotated by the category
representing quantitative attributes."

Given a topic's term distribution φ_k and an empirical setting's measured
texture, the validation asks: do the topic's high-probability terms carry
dictionary polarities whose *sign* agrees with the measured attributes?
The agreement is scored per axis as the correlation between the
φ-weighted term polarity and the setting's signed sensory signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.lexicon.categories import AXES, SensoryAxis
from repro.lexicon.dictionary import TextureDictionary
from repro.rheology.attributes import TextureProfile
from repro.synth.term_affinity import axis_signals


def topic_polarity(
    phi_row: np.ndarray,
    vocabulary: Sequence[str],
    dictionary: TextureDictionary,
) -> dict[SensoryAxis, float]:
    """φ-weighted mean polarity of a topic on each sensory axis."""
    phi_row = np.asarray(phi_row, dtype=float)
    if phi_row.size != len(vocabulary):
        raise ReproError("phi row does not match the vocabulary")
    polarity = {axis: 0.0 for axis in AXES}
    for weight, surface in zip(phi_row, vocabulary):
        term = dictionary.get(surface)
        if term is None:
            continue
        for axis in AXES:
            polarity[axis] += float(weight) * term.polarity_on(axis)
    return polarity


@dataclass(frozen=True)
class LinkValidation:
    """Per-axis agreement between a topic and a measured texture."""

    per_axis: dict[SensoryAxis, float]  # polarity × signal per axis

    @property
    def score(self) -> float:
        """Mean signed agreement across axes (positive = consistent)."""
        return float(np.mean(list(self.per_axis.values())))

    @property
    def consistent(self) -> bool:
        """True when no axis *strongly* contradicts the measurement.

        A mild negative product (topic slightly firm, measurement
        slightly soft) is tolerated — Table I's own rows disagree at that
        level (e.g. row 3's H = 0.72 linked to the paper's *katai* topic);
        a product below −0.1 means the topic's terms claim the opposite
        pole of a clearly-signed measurement.
        """
        return all(v > -0.1 for v in self.per_axis.values())


def validate_link(
    phi_row: np.ndarray,
    vocabulary: Sequence[str],
    dictionary: TextureDictionary,
    texture: TextureProfile,
) -> LinkValidation:
    """Score one topic ↔ measured-texture linkage.

    For each axis, the product of the topic's φ-weighted polarity and the
    measurement's signed signal is positive when the qualitative terms
    point the same way as the quantitative attribute.
    """
    polarity = topic_polarity(phi_row, vocabulary, dictionary)
    signals = axis_signals(texture)
    return LinkValidation(
        per_axis={axis: polarity[axis] * signals[axis] for axis in AXES}
    )


def validation_summary(validations: Sequence[LinkValidation]) -> dict[str, float]:
    """Aggregate validation over many links."""
    if not validations:
        raise ReproError("no validations to summarise")
    scores = [v.score for v in validations]
    return {
        "mean_score": float(np.mean(scores)),
        "consistent_fraction": float(
            np.mean([1.0 if v.consistent else 0.0 for v in validations])
        ),
    }
