"""Evaluation utilities: divergences, clustering metrics, validation.

* :mod:`repro.eval.divergence` — Gaussian and discrete KL divergences
  (the similarity machinery of Sections III-C.4 and V-B);
* :mod:`repro.eval.metrics` — purity, NMI, V-measure, topic coherence;
* :mod:`repro.eval.validation` — category-consistency validation of
  topic→rheology linkages against the dictionary annotations;
* :mod:`repro.eval.binning` — KL-ordered histogram binning (Fig 3).
"""

from repro.eval.divergence import (
    concentration_kl,
    discrete_kl,
    gaussian_kl,
    point_gaussian_kl,
    symmetric_gaussian_kl,
)
from repro.eval.metrics import normalized_mutual_information, purity, v_measure

__all__ = [
    "gaussian_kl",
    "point_gaussian_kl",
    "symmetric_gaussian_kl",
    "discrete_kl",
    "concentration_kl",
    "purity",
    "normalized_mutual_information",
    "v_measure",
]
