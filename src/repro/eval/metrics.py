"""Clustering and topic-quality metrics.

Used by the ablation benches to compare the joint model against the
LDA / GMM baselines on ground-truth gel bands: purity, normalised mutual
information, V-measure, and UMass topic coherence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ReproError


def _contingency(labels_a: Sequence, labels_b: Sequence) -> np.ndarray:
    a = list(labels_a)
    b = list(labels_b)
    if len(a) != len(b) or not a:
        raise ReproError("label sequences must be equal-length and non-empty")
    cats_a = {c: i for i, c in enumerate(sorted(set(a), key=str))}
    cats_b = {c: i for i, c in enumerate(sorted(set(b), key=str))}
    table = np.zeros((len(cats_a), len(cats_b)), dtype=np.int64)
    for x, y in zip(a, b):
        table[cats_a[x], cats_b[y]] += 1
    return table


def purity(predicted: Sequence, truth: Sequence) -> float:
    """Cluster purity: fraction of points in their cluster's majority class."""
    table = _contingency(predicted, truth)
    return float(table.max(axis=1).sum() / table.sum())


def _entropy(counts: np.ndarray) -> float:
    p = counts[counts > 0] / counts.sum()
    return float(-(p * np.log(p)).sum())  # repro: noqa[NUM002] - p filtered strictly positive on the line above


def mutual_information(labels_a: Sequence, labels_b: Sequence) -> float:
    """MI between two labelings, in nats."""
    table = _contingency(labels_a, labels_b).astype(float)
    n = table.sum()
    joint = table / n
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = joint * np.log(joint / (pa @ pb))  # repro: noqa[NUM002] - zeros masked out below; errstate silences the -inf
    return float(terms[mask].sum())


def normalized_mutual_information(labels_a: Sequence, labels_b: Sequence) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1]."""
    table = _contingency(labels_a, labels_b).astype(float)
    h_a = _entropy(table.sum(axis=1))
    h_b = _entropy(table.sum(axis=0))
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    denominator = 0.5 * (h_a + h_b)
    if denominator == 0.0:
        return 0.0
    return float(np.clip(mutual_information(labels_a, labels_b) / denominator, 0, 1))


def v_measure(predicted: Sequence, truth: Sequence, beta: float = 1.0) -> float:
    """V-measure: harmonic mean of homogeneity and completeness."""
    table = _contingency(predicted, truth).astype(float)
    h_truth = _entropy(table.sum(axis=0))
    h_pred = _entropy(table.sum(axis=1))
    mi = mutual_information(predicted, truth)
    homogeneity = 1.0 if h_truth == 0 else mi / h_truth
    completeness = 1.0 if h_pred == 0 else mi / h_pred
    if homogeneity + completeness == 0:
        return 0.0
    return float(
        (1 + beta)
        * homogeneity
        * completeness
        / (beta * homogeneity + completeness)
    )


def word_perplexity(
    docs: Sequence[np.ndarray],
    phi: np.ndarray,
    theta: np.ndarray,
) -> float:
    """Per-token perplexity of ``docs`` under fitted (φ, θ) estimates.

    ``exp(−(1/N) Σ_dn log Σ_k θ_dk φ_k,w_dn)`` — lower is better. Used to
    compare the words channel of the joint model against plain LDA on the
    same documents.
    """
    phi = np.asarray(phi, dtype=float)
    theta = np.asarray(theta, dtype=float)
    if theta.shape[0] != len(docs):
        raise ReproError("theta must have one row per document")
    total_log = 0.0
    total_tokens = 0
    for d, words in enumerate(docs):
        words = np.asarray(words, dtype=int)
        if words.size == 0:
            continue
        probs = theta[d] @ phi[:, words]
        total_log += float(np.log(np.maximum(probs, 1e-300)).sum())
        total_tokens += words.size
    if total_tokens == 0:
        raise ReproError("no tokens to score")
    return float(np.exp(-total_log / total_tokens))


def umass_coherence(
    top_words: Sequence[int],
    doc_term: np.ndarray,
    eps: float = 1.0,
) -> float:
    """UMass coherence of one topic's top words.

    ``doc_term`` is a (D, V) presence/count matrix; higher (less
    negative) coherence means the topic's words co-occur in documents.
    """
    doc_term = np.asarray(doc_term) > 0
    words = list(top_words)
    if len(words) < 2:
        return 0.0
    score = 0.0
    pairs = 0
    for i in range(1, len(words)):
        for j in range(i):
            co = float(np.logical_and(doc_term[:, words[i]], doc_term[:, words[j]]).sum())
            base = float(doc_term[:, words[j]].sum())
            if base > 0:
                score += np.log((co + eps) / base)  # repro: noqa[NUM002] - base > 0 guarded on the line above
                pairs += 1
    return float(score / max(pairs, 1))
