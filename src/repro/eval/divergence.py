"""Kullback–Leibler divergences.

The paper uses KL divergence twice:

* Section III-C.4 — matching each empirical gel setting to its most
  similar topic Gaussian (:func:`point_gaussian_kl` /
  :func:`gaussian_kl`);
* Section V-B — ranking recipes inside a topic by similarity of their
  emulsion concentrations to a studied dish
  (:func:`concentration_kl`, a discrete KL over composition shares).
"""

from __future__ import annotations

import numpy as np

from repro.core.linalg import guarded_inv, guarded_slogdet
from repro.errors import ReproError


def gaussian_kl(
    mean_p: np.ndarray,
    cov_p: np.ndarray,
    mean_q: np.ndarray,
    cov_q: np.ndarray,
) -> float:
    """KL( N(mean_p, cov_p) ‖ N(mean_q, cov_q) ), closed form."""
    mean_p = np.asarray(mean_p, dtype=float)
    mean_q = np.asarray(mean_q, dtype=float)
    cov_p = np.atleast_2d(np.asarray(cov_p, dtype=float))
    cov_q = np.atleast_2d(np.asarray(cov_q, dtype=float))
    d = mean_p.size
    if mean_q.size != d or cov_p.shape != (d, d) or cov_q.shape != (d, d):
        raise ReproError("dimension mismatch in gaussian_kl")
    sign_q, logdet_q = guarded_slogdet(cov_q)
    sign_p, logdet_p = guarded_slogdet(cov_p)
    if sign_q <= 0 or sign_p <= 0:
        raise ReproError("covariances must be positive definite")
    inv_q = guarded_inv(cov_q)
    diff = mean_q - mean_p
    value = 0.5 * (
        np.trace(inv_q @ cov_p)
        + diff @ inv_q @ diff
        - d
        + logdet_q
        - logdet_p
    )
    return float(max(value, 0.0))


def point_gaussian_kl(
    point: np.ndarray,
    mean: np.ndarray,
    cov: np.ndarray,
    point_sigma: float = 0.35,
) -> float:
    """KL from a point-mass-like setting to a topic Gaussian.

    An empirical study setting is a single concentration vector, not a
    distribution; following standard practice we widen it into an
    isotropic Gaussian of standard deviation ``point_sigma`` (in −log
    concentration space) and take KL(setting ‖ topic).
    """
    point = np.asarray(point, dtype=float)
    cov_p = np.eye(point.size) * point_sigma**2
    return gaussian_kl(point, cov_p, mean, cov)


def symmetric_gaussian_kl(
    mean_p: np.ndarray, cov_p: np.ndarray, mean_q: np.ndarray, cov_q: np.ndarray
) -> float:
    """Jeffreys divergence: KL(p‖q) + KL(q‖p)."""
    return gaussian_kl(mean_p, cov_p, mean_q, cov_q) + gaussian_kl(
        mean_q, cov_q, mean_p, cov_p
    )


def discrete_kl(p: np.ndarray, q: np.ndarray, eps: float = 1e-9) -> float:
    """KL(p ‖ q) for discrete distributions, with ε-smoothing."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ReproError("shape mismatch in discrete_kl")
    if np.any(p < 0) or np.any(q < 0):
        raise ReproError("probabilities must be non-negative")
    p = p + eps
    q = q + eps
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))  # repro: noqa[NUM002] - p and q are eps-smoothed and renormalised above


def concentration_kl(shares_a: np.ndarray, shares_b: np.ndarray) -> float:
    """Section V-B divergence between two composition-share vectors.

    Shares are mass fractions summing to ≤ 1; the remainder (water phase
    and everything untracked) is appended as an explicit component so
    both vectors are genuine distributions before the discrete KL.
    """
    a = np.asarray(shares_a, dtype=float)
    b = np.asarray(shares_b, dtype=float)
    if a.shape != b.shape:
        raise ReproError("shape mismatch in concentration_kl")
    if np.any(a < 0) or np.any(b < 0):
        raise ReproError("shares must be non-negative")
    rest_a = max(1.0 - a.sum(), 0.0)
    rest_b = max(1.0 - b.sum(), 0.0)
    return discrete_kl(np.append(a, rest_a), np.append(b, rest_b))
