"""KL-ordered binning: the machinery behind the paper's Fig 3.

Section V-B ranks the recipes of a topic by KL divergence of their
emulsion concentrations to a studied dish, then plots histograms of how
many recipes in each KL bin carry terms of a given sensory class (hard /
soft, elastic / cohesive). :func:`kl_ordered_bins` reproduces exactly
that series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ReproError
from repro.eval.divergence import concentration_kl
from repro.lexicon.categories import SensoryAxis
from repro.lexicon.dictionary import TextureDictionary


@dataclass(frozen=True)
class BinnedSeries:
    """Counts of positive/negative-pole recipes per KL bin."""

    axis: SensoryAxis
    edges: np.ndarray            # bin edges over KL divergence, len B+1
    positive: np.ndarray         # e.g. "hard" recipe counts, len B
    negative: np.ndarray         # e.g. "soft" recipe counts, len B

    @property
    def positive_label(self) -> str:
        return self.axis.positive_label

    @property
    def negative_label(self) -> str:
        return self.axis.negative_label


def recipe_axis_sign(
    term_counts: Mapping[str, int],
    axis: SensoryAxis,
    dictionary: TextureDictionary,
) -> int:
    """Classify one recipe on ``axis`` by its term-frequency-weighted polarity."""
    score = 0.0
    for surface, count in term_counts.items():
        term = dictionary.get(surface)
        if term is not None:
            score += count * term.polarity_on(axis)
    if score > 0:
        return 1
    if score < 0:
        return -1
    return 0


def kl_ranking(
    emulsion_shares: Sequence[np.ndarray],
    dish_shares: np.ndarray,
    divergence: Callable[[np.ndarray, np.ndarray], float] = concentration_kl,
) -> np.ndarray:
    """KL divergence of each recipe's emulsion shares to the dish's."""
    dish = np.asarray(dish_shares, dtype=float)
    return np.array([divergence(np.asarray(e, float), dish) for e in emulsion_shares])


def kl_ordered_bins(
    divergences: np.ndarray,
    term_counts_list: Sequence[Mapping[str, int]],
    axis: SensoryAxis,
    dictionary: TextureDictionary,
    n_bins: int = 8,
) -> BinnedSeries:
    """Fig 3 series: per-KL-bin counts of positive vs negative recipes."""
    divergences = np.asarray(divergences, dtype=float)
    if len(divergences) != len(term_counts_list):
        raise ReproError("divergences and term counts must align")
    if len(divergences) == 0:
        raise ReproError("no recipes to bin")
    if n_bins < 1:
        raise ReproError("need at least one bin")
    edges = np.quantile(divergences, np.linspace(0.0, 1.0, n_bins + 1))
    edges[-1] += 1e-12  # right-inclusive last bin
    positive = np.zeros(n_bins, dtype=np.int64)
    negative = np.zeros(n_bins, dtype=np.int64)
    indices = np.clip(
        np.searchsorted(edges, divergences, side="right") - 1, 0, n_bins - 1
    )
    for b, counts in zip(indices, term_counts_list):
        sign = recipe_axis_sign(counts, axis, dictionary)
        if sign > 0:
            positive[b] += 1
        elif sign < 0:
            negative[b] += 1
    return BinnedSeries(axis=axis, edges=edges, positive=positive, negative=negative)


def low_kl_concentration(series: BinnedSeries, head: int = 2) -> float:
    """Share of the positive pole's mass sitting in the lowest-KL bins.

    The paper's reading of Fig 3 — "the smaller the KL is, the more
    frequent the bins of hardness become" — corresponds to this statistic
    being larger than ``head / n_bins``.
    """
    total = series.positive.sum()
    if total == 0:
        return 0.0
    return float(series.positive[:head].sum() / total)
