"""ASCII rendering of a two-bite TPA curve (the paper's Fig 2).

No plotting dependency is available offline, so :func:`render_curve`
draws the force-time curve as text, with the Fig 2 landmarks (F1, the
a/c compression areas, the negative adhesion region b) annotated. Used
by the quickstart-adjacent examples and handy in a terminal session::

    >>> from repro.rheology import Rheometer
    >>> from repro.rheology.material import MaterialParameters
    >>> curve = Rheometer().run(MaterialParameters(2.0, adhesion_j_m2=0.5))
    >>> print(render_curve(curve))
"""

from __future__ import annotations

import numpy as np

from repro.rheology.rheometer import TPACurve


def render_curve(
    curve: TPACurve, width: int = 72, height: int = 16
) -> str:
    """Render ``curve`` as a ``height``×``width`` ASCII chart.

    ``*`` marks bite 1, ``o`` bite 2; the zero-force axis is drawn as
    ``-``; the first-compression peak is capped with ``F1``.
    """
    if width < 20 or height < 6:
        raise ValueError("chart too small to render")
    force = curve.force
    fmax, fmin = float(force.max()), min(float(force.min()), 0.0)
    span = max(fmax - fmin, 1e-9)

    # resample to the character width
    columns = np.linspace(0, len(force) - 1, width).astype(int)
    sampled = force[columns]
    bites = curve.bite[columns]

    def row_of(value: float) -> int:
        return int(round((fmax - value) / span * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    zero_row = row_of(0.0)
    for x in range(width):
        grid[zero_row][x] = "-"
    for x, (value, bite) in enumerate(zip(sampled, bites)):
        marker = "*" if bite == 1 else "o"
        grid[row_of(float(value))][x] = marker

    # annotate F1 at the first-bite peak (above it, or beside it when the
    # peak sits on the top row)
    peak_x = int(np.argmax(np.where(bites == 1, sampled, -np.inf)))
    peak_row = row_of(float(sampled[peak_x]))
    label_row = peak_row - 1 if peak_row > 0 else peak_row
    label_x = peak_x if peak_row > 0 else peak_x + 2
    if label_x < width - 2:
        grid[label_row][label_x] = "F"
        grid[label_row][label_x + 1] = "1"

    lines = ["".join(row) for row in grid]
    profile = curve.extract()
    legend = (
        f"force {fmin:.2f}..{fmax:.2f} RU | * bite1  o bite2  - zero | "
        f"H={profile.hardness:.2f} C={profile.cohesiveness:.2f} "
        f"A={profile.adhesiveness:.2f}"
    )
    return "\n".join(lines + [legend])
