"""Composition → texture response surface, calibrated to the paper.

Food-science background encoded here (Section III and [19]): the texture
of a gel dish is *primarily* determined by the tiny concentrations of the
gelling agents (gelatin, kanten, agar — fractions of a percent to a few
percent), with *subordinate* effects from the bulk emulsions (sugar, egg
albumen, egg yolk, raw cream, milk, yogurt).

Per-gel response curves are calibrated against the paper's Table I:

* **gelatin** — hardness rises steeply then saturates (Hill curve);
  moderately elastic; becomes tacky above ~2.2 %.
* **kanten** — hardest per unit mass, brittle (very low cohesiveness),
  never sticky.
* **agar** — intermediate; over-dosing weakens the network (the Table I
  rows 10–13 non-monotonicity) and makes it adhesive.
* **gelatin × agar** — strongly synergistic adhesiveness
  (the 12.6 RU spike of Table I row 5).

Emulsion effects are calibrated against Table II(b): emulsions harden the
dish, cream/yolk make it markedly more cohesive (Bavarois), milk much
less so (Milk jelly), and all of them dilute surface tack.

The model exposes both the direct response surface (:meth:`profile`) and
a material-parameter mapping (:meth:`material`) so the same composition
can be "measured" through the simulated rheometer of
:mod:`repro.rheology.rheometer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.errors import RheologyError
from repro.rheology.attributes import TextureProfile
from repro.rheology.material import MaterialParameters
from repro.rheology.rheometer import Rheometer
from repro.rng import RngLike

#: Canonical gel order used by every concentration vector in the package.
GEL_NAMES: tuple[str, ...] = ("gelatin", "kanten", "agar")

#: Canonical emulsion order (the paper's six emulsions, Section IV-A).
EMULSION_NAMES: tuple[str, ...] = (
    "sugar",
    "egg_white",
    "egg_yolk",
    "cream",
    "milk",
    "yogurt",
)


@dataclass(frozen=True)
class Composition:
    """Mass-fraction composition of a dish: gels + emulsions."""

    gels: Mapping[str, float] = field(default_factory=dict)
    emulsions: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        gels = {k: float(v) for k, v in self.gels.items() if v}
        emulsions = {k: float(v) for k, v in self.emulsions.items() if v}
        for name in gels:
            if name not in GEL_NAMES:
                raise RheologyError(f"unknown gel {name!r}")
        for name in emulsions:
            if name not in EMULSION_NAMES:
                raise RheologyError(f"unknown emulsion {name!r}")
        for name, value in {**gels, **emulsions}.items():
            if not 0.0 <= value <= 1.0:
                raise RheologyError(f"concentration of {name!r} out of [0,1]: {value}")
        total = sum(gels.values()) + sum(emulsions.values())
        if total > 1.0 + 1e-9:
            raise RheologyError(f"concentrations sum to {total:.3f} > 1")
        object.__setattr__(self, "gels", MappingProxyType(gels))
        object.__setattr__(self, "emulsions", MappingProxyType(emulsions))

    def gel_vector(self) -> np.ndarray:
        """Gel concentrations in :data:`GEL_NAMES` order."""
        return np.array([self.gels.get(n, 0.0) for n in GEL_NAMES])

    def emulsion_vector(self) -> np.ndarray:
        """Emulsion concentrations in :data:`EMULSION_NAMES` order."""
        return np.array([self.emulsions.get(n, 0.0) for n in EMULSION_NAMES])

    @property
    def total_gel(self) -> float:
        """Total gelling-agent mass fraction."""
        return float(sum(self.gels.values()))


# --- per-gel response curves (Table I calibration) -----------------------

def _hill(c: float, hmax: float, k: float, n: float) -> float:
    if c <= 0.0:
        return 0.0
    r = (c / k) ** n
    return hmax * r / (1.0 + r)


def _gelatin_hardness(c: float) -> float:
    return _hill(c, hmax=6.8, k=0.034, n=6.0)


def _kanten_hardness(c: float) -> float:
    # Kanten barely sets below ~0.4 %: a sol-gel threshold gates the Hill
    # curve so 0.3–0.5 % "yuru kanten" reads as loose, not as weak-solid.
    setting = 1.0 / (1.0 + math.exp(-(c - 0.0035) / 0.001)) if c > 0 else 0.0
    return setting * _hill(c, hmax=6.0, k=0.009, n=3.0)


def _agar_hardness(c: float) -> float:
    if c <= 0.0:
        return 0.0
    return 1.22 * (c / 0.008) ** 2.4 * math.exp(-((c / 0.018) ** 2))


def _decay(c: float, base: float, c0: float, m: float) -> float:
    if c <= 0.0:
        return 0.0
    return base / (1.0 + (c / c0) ** m)


_GEL_HARDNESS = {
    "gelatin": _gelatin_hardness,
    "kanten": _kanten_hardness,
    "agar": _agar_hardness,
}

def _gelatin_cohesiveness(c: float) -> float:
    # Gelatin networks stay rubbery even when concentrated: decay to a
    # chewy floor rather than to brittle crumb (gummy candy is elastic).
    if c <= 0.0:
        return 0.0
    return 0.30 + 0.45 / (1.0 + (c / 0.022) ** 3)


_GEL_COHESIVENESS = {
    "gelatin": _gelatin_cohesiveness,
    "kanten": lambda c: _decay(c, base=0.50, c0=0.004, m=1.5),
    "agar": lambda c: _decay(c, base=0.90, c0=0.009, m=1.3),
}

#: Yield strain (brittleness) per gel: gelatin stretches, kanten snaps.
_GEL_YIELD_STRAIN = {"gelatin": 0.60, "kanten": 0.25, "agar": 0.35}

# --- emulsion effect weights (Table II(b) calibration) --------------------

_EMULSION_HARDNESS_W = {
    "cream": 10.0, "egg_yolk": 12.0, "egg_white": 3.0,
    "milk": 1.8, "sugar": 1.0, "yogurt": 1.5,
}
_EMULSION_COHESION_W = {
    "cream": 12.0, "egg_yolk": 10.0, "egg_white": 3.0,
    "milk": 0.3, "sugar": 0.2, "yogurt": 0.3,
}
_EMULSION_ADHESION_W = {
    "cream": 8.0, "egg_yolk": 6.0, "egg_white": 2.0,
    "milk": 0.8, "sugar": 0.2, "yogurt": 1.0,
}

#: Cohesiveness of an unset (gel-free) liquid dessert base.
_UNGELLED_COHESIVENESS = 0.45
#: Hardness ceiling; c/a is a ratio so cohesiveness is capped below 1.
_MAX_COHESIVENESS = 0.95


class GelSystemModel:
    """The calibrated composition → texture model.

    All methods are deterministic; randomness (batch variation, sloppy
    measuring) belongs to the corpus synthesiser, not the physics.
    """

    def __init__(self, rheometer: Rheometer | None = None) -> None:
        self.rheometer = rheometer or Rheometer()

    # -- response surface --------------------------------------------------

    def gel_hardness(self, gels: Mapping[str, float]) -> float:
        """Hardness (RU) from gels alone, Euclidean-combined across gels."""
        contributions = [
            _GEL_HARDNESS[name](gels.get(name, 0.0)) for name in GEL_NAMES
        ]
        return float(np.sqrt(np.sum(np.square(contributions))))

    def gel_cohesiveness(self, gels: Mapping[str, float]) -> float:
        """Concentration-weighted cohesiveness from gels alone."""
        weights = [gels.get(name, 0.0) for name in GEL_NAMES]
        total = sum(weights)
        if total <= 0.0:
            return _UNGELLED_COHESIVENESS
        values = [
            _GEL_COHESIVENESS[name](gels.get(name, 0.0)) for name in GEL_NAMES
        ]
        return float(sum(w * v for w, v in zip(weights, values)) / total)

    def gel_adhesiveness(self, gels: Mapping[str, float]) -> float:
        """Adhesiveness (RU) from gels, including the gelatin×agar synergy."""
        gelatin = gels.get("gelatin", 0.0)
        kanten = gels.get("kanten", 0.0)
        agar = gels.get("agar", 0.0)
        adh = 0.0
        if gelatin > 0.0:
            adh += 0.05 + 9.0 * max(0.0, gelatin - 0.022) ** 0.5
        if agar > 0.0:
            adh += 0.2 * (agar / 0.01) + 120.0 * max(0.0, agar - 0.012)
        if 0.0 < kanten < 0.006:
            # under-set kanten weeps (syneresis): wet, slightly clinging
            adh += 1.2 * (0.006 - kanten) / 0.006
        # gelatin×agar interpenetrating networks turn gluey only when both
        # are concentrated (Table I row 5: 12.6 RU at 3 % + 3 %)
        adh += 44000.0 * max(0.0, gelatin - 0.015) * max(0.0, agar - 0.015)
        return adh

    def profile(self, composition: Composition) -> TextureProfile:
        """Texture profile of ``composition`` (the paper's RU attributes)."""
        gels = composition.gels
        emulsions = composition.emulsions

        hardness_gel = self.gel_hardness(gels)
        hardness = hardness_gel * (
            1.0
            + sum(
                _EMULSION_HARDNESS_W[n] * emulsions.get(n, 0.0)
                for n in EMULSION_NAMES
            )
        )

        # Emulsion droplets reinforce cohesiveness only when there is a
        # gel network for them to fill ([19]: "emulsion-filled gels");
        # in a barely-set foam (mousse) the aerated egg white instead
        # makes the bite collapse — low cohesiveness, fluffy sensorially.
        gel_strength = hardness_gel / (hardness_gel + 0.3)
        cohesion = self.gel_cohesiveness(gels)
        boost = 1.0 + gel_strength * sum(
            _EMULSION_COHESION_W[n] * emulsions.get(n, 0.0) for n in EMULSION_NAMES
        )
        cohesion = 1.0 - (1.0 - cohesion) ** boost
        foam = emulsions.get("egg_white", 0.0) * (1.0 - gel_strength)
        cohesion /= 1.0 + 6.0 * foam
        cohesion = min(cohesion, _MAX_COHESIVENESS)

        adhesion = self.gel_adhesiveness(gels)
        adhesion /= 1.0 + sum(
            _EMULSION_ADHESION_W[n] * emulsions.get(n, 0.0) for n in EMULSION_NAMES
        )
        return TextureProfile(
            hardness=max(hardness, 0.0),
            cohesiveness=float(np.clip(cohesion, 0.0, _MAX_COHESIVENESS)),
            adhesiveness=max(adhesion, 0.0),
        )

    # -- rheometer loop ----------------------------------------------------

    def yield_strain(self, gels: Mapping[str, float]) -> float:
        """Concentration-weighted yield strain (brittleness) of the mix."""
        weights = [gels.get(name, 0.0) for name in GEL_NAMES]
        total = sum(weights)
        if total <= 0.0:
            return 0.5
        strains = [_GEL_YIELD_STRAIN[name] for name in GEL_NAMES]
        return float(sum(w * s for w, s in zip(weights, strains)) / total)

    def material(self, composition: Composition) -> MaterialParameters:
        """Material parameters realising this composition's profile.

        Inverts the rheometer's force model: the modulus is chosen so the
        first-compression peak (F1) lands on the response-surface
        hardness, recovery is the cohesiveness, and the adhesion work is
        the adhesiveness.
        """
        target = self.profile(composition)
        yield_strain = float(np.clip(self.yield_strain(composition.gels), 0.1, 0.6))
        rate = self.rheometer.strain_max / self.rheometer.stroke_seconds
        force_per_kpa = 1000.0 * self.rheometer.probe_area_m2
        # Small enough that the rate-dependent stress never rivals the
        # elastic term of even the softest Table I gel (0.2 RU).
        viscosity = 0.01
        modulus = max(
            (target.hardness / force_per_kpa - viscosity * rate) / yield_strain,
            1e-3,
        )
        recovery = float(np.clip(target.cohesiveness, 0.0, 0.95))
        return MaterialParameters(
            modulus_kpa=modulus,
            yield_strain=yield_strain,
            recovery=recovery,
            adhesion_j_m2=target.adhesiveness,
            viscosity_kpa_s=viscosity,
            # springy gels are the cohesive ones: a network that survives
            # the first bite also pushes the sample back to height
            springiness=float(np.clip(0.4 + 0.6 * recovery, 0.0, 1.0)),
        )

    def measure(self, composition: Composition, rng: RngLike = None) -> TextureProfile:
        """Texture profile obtained *through the simulated instrument*.

        Unlike :meth:`profile` this runs the full two-bite measurement and
        numerically extracts F1 / c/a / negative area, so it inherits the
        discretisation and extraction behaviour of a real rheometer.
        """
        return self.rheometer.measure(self.material(composition), rng=rng)
