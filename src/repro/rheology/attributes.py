"""The quantitative texture profile.

The paper's Fig 2 defines three instrumental attributes extracted from a
two-bite rheometer curve:

* **hardness** — peak force of the first compression (F1);
* **cohesiveness** — ratio of second-compression work to
  first-compression work (c/a), dimensionless in [0, 1];
* **adhesiveness** — cumulative negative force during the first
  ascent (area b).

Hardness and adhesiveness are expressed in RU (rheological units, the
unit the paper normalises all studies to); cohesiveness is a pure ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TextureProfile:
    """Hardness / cohesiveness / adhesiveness of one sample, in RU.

    ``springiness`` (height-recovery ratio between bites, the fourth
    classic TPA parameter) is optional: the paper's Table I reports only
    the three primary attributes, but the simulated rheometer extracts
    springiness too, and the derived TPA parameters *gumminess*
    (hardness × cohesiveness) and *chewiness* (gumminess × springiness)
    are exposed as properties.
    """

    hardness: float
    cohesiveness: float
    adhesiveness: float
    springiness: float | None = None

    def __post_init__(self) -> None:
        for name in ("hardness", "cohesiveness", "adhesiveness"):
            value = getattr(self, name)
            if not np.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value}")
            if value < 0.0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.springiness is not None and not 0.0 <= self.springiness <= 1.5:
            raise ValueError(
                f"springiness must lie in [0, 1.5], got {self.springiness}"
            )

    @property
    def gumminess(self) -> float:
        """TPA gumminess: hardness × cohesiveness (semi-solid chew energy)."""
        return self.hardness * self.cohesiveness

    @property
    def chewiness(self) -> float | None:
        """TPA chewiness: gumminess × springiness; ``None`` without
        springiness."""
        if self.springiness is None:
            return None
        return self.gumminess * self.springiness

    def as_array(self) -> np.ndarray:
        """``[hardness, cohesiveness, adhesiveness]`` as a float vector."""
        return np.array(
            [self.hardness, self.cohesiveness, self.adhesiveness], dtype=float
        )

    @classmethod
    def from_array(cls, values) -> "TextureProfile":
        """Inverse of :meth:`as_array`."""
        h, c, a = (float(v) for v in values)
        return cls(hardness=h, cohesiveness=c, adhesiveness=a)

    def relative_error(self, other: "TextureProfile") -> dict[str, float]:
        """Per-attribute relative error |self−other| / max(|other|, eps).

        Used by the Table I bench to compare simulated against published
        values without dividing by the zero adhesiveness entries.
        """
        eps = 1e-3
        mine, theirs = self.as_array(), other.as_array()
        denom = np.maximum(np.abs(theirs), eps)
        errors = np.abs(mine - theirs) / denom
        return {
            "hardness": float(errors[0]),
            "cohesiveness": float(errors[1]),
            "adhesiveness": float(errors[2]),
        }

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"H={self.hardness:.2f}RU "
            f"C={self.cohesiveness:.2f} "
            f"A={self.adhesiveness:.2f}RU"
        )
