"""Rheological unit (RU) conversions.

Section IV-B: "The unit of measurements for these attributes are
different depending on the research, because the unit is not necessarily
standardized among the products of rheometers. So, we converted all the
values of the measurement to the unit of RU (rheological unit), which is
the most popular one adopted by related research."

RU descends from the GF Texturometer tradition; we fix the convention
that 1 RU corresponds to 1 newton of probe force on the reference
20 cm² plunger, and express other instruments' readings relative to it.
Adhesiveness, an accumulated force, converts with the same force factor.
"""

from __future__ import annotations

import enum

from repro.errors import RheologyError


class ForceUnit(enum.Enum):
    """Force units found across the source studies."""

    RU = "RU"                  # reference unit
    NEWTON = "N"               # 1 N = 1 RU by convention
    GRAM_FORCE = "gf"          # 1 gf = 9.80665e-3 N
    KILOGRAM_FORCE = "kgf"     # 1 kgf = 9.80665 N
    DYNE = "dyn"               # 1 dyn = 1e-5 N
    KPA_ON_PROBE = "kPa"       # stress on the 20 cm² reference probe


#: Newtons per one unit of each force unit.
_NEWTONS_PER_UNIT: dict[ForceUnit, float] = {
    ForceUnit.RU: 1.0,
    ForceUnit.NEWTON: 1.0,
    ForceUnit.GRAM_FORCE: 9.80665e-3,
    ForceUnit.KILOGRAM_FORCE: 9.80665,
    ForceUnit.DYNE: 1e-5,
    # stress × probe area: 1 kPa × 20 cm² = 1000 Pa × 2e-3 m² = 2 N
    ForceUnit.KPA_ON_PROBE: 2.0,
}

#: Area of the reference plunger (m²), used by the stress conversion and
#: by the rheometer simulation.
REFERENCE_PROBE_AREA_M2 = 2.0e-3


def to_ru(value: float, unit: ForceUnit) -> float:
    """Convert a force (or accumulated-force) reading to RU."""
    try:
        factor = _NEWTONS_PER_UNIT[unit]
    except KeyError:  # pragma: no cover - enum is closed
        raise RheologyError(f"no RU conversion for {unit!r}") from None
    return value * factor


def from_ru(value: float, unit: ForceUnit) -> float:
    """Convert an RU reading into ``unit``."""
    factor = _NEWTONS_PER_UNIT[unit]
    if factor == 0:  # pragma: no cover - defensive
        raise RheologyError(f"degenerate unit {unit!r}")
    return value / factor
