"""Empirical food-science data, transcribed from the paper.

* :data:`TABLE_I` — the 13 gel settings with rheometer-measured
  hardness / cohesiveness / adhesiveness (paper Table I), gathered from
  six food-science studies ([3]–[5], [15]–[17] in the paper).
* :data:`BAVAROIS` and :data:`MILK_JELLY` — the two emulsion-gel mixture
  dishes of Table II(b) ([20], [21]).

Values are verbatim. The paper's Table I misprints two consecutive rows
as "8"; we number rows 1–13 sequentially as the text (which speaks of
"research results 1 and 2", "data id 3", rows "6,7,8,9" for kanten and
"10,11,12,13" for agar) requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.rheology.attributes import TextureProfile
from repro.rheology.gel_system import EMULSION_NAMES, GEL_NAMES, Composition


@dataclass(frozen=True)
class EmpiricalSetting:
    """One Table I row: a gel setting and its measured texture."""

    data_id: int
    gels: Mapping[str, float]
    texture: TextureProfile
    source: str = ""

    def __post_init__(self) -> None:
        gels = {k: float(v) for k, v in self.gels.items() if v}
        unknown = set(gels) - set(GEL_NAMES)
        if unknown:
            raise ValueError(f"unknown gels in setting {self.data_id}: {unknown}")
        object.__setattr__(self, "gels", MappingProxyType(gels))

    def gel_vector(self) -> np.ndarray:
        """Gel concentrations in canonical :data:`GEL_NAMES` order."""
        return np.array([self.gels.get(n, 0.0) for n in GEL_NAMES])

    def composition(self) -> Composition:
        """The setting as a :class:`Composition` (no emulsions)."""
        return Composition(gels=dict(self.gels))


def _setting(data_id, gelatin, kanten, agar, hardness, cohesiveness,
             adhesiveness, source):
    return EmpiricalSetting(
        data_id=data_id,
        gels={"gelatin": gelatin, "kanten": kanten, "agar": agar},
        texture=TextureProfile(hardness, cohesiveness, adhesiveness),
        source=source,
    )


#: Paper Table I, verbatim (13 gel settings).
TABLE_I: tuple[EmpiricalSetting, ...] = (
    _setting(1, 0.018, 0, 0, 0.20, 0.60, 0.10, "Kawamura & Takayanagi 1980 [4]"),
    _setting(2, 0.020, 0, 0, 0.30, 0.59, 0.04, "Kawamura & Takayanagi 1980 [4]"),
    _setting(3, 0.025, 0, 0, 0.72, 0.17, 0.57, "Kawamura, Nakajima & Kouno 1978 [16]"),
    _setting(4, 0.030, 0, 0, 2.78, 0.31, 0.42, "Kurimoto et al. 1997 [15]"),
    _setting(5, 0.030, 0, 0.03, 3.01, 0.35, 12.6, "Kurimoto et al. 1997 [15]"),
    _setting(6, 0, 0.008, 0, 2.20, 0.12, 0.0, "Okuma, Akabane & Nakahama 1978 [5]"),
    _setting(7, 0, 0.010, 0, 3.50, 0.10, 0.0, "Okuma, Akabane & Nakahama 1978 [5]"),
    _setting(8, 0, 0.012, 0, 5.00, 0.80, 0.0, "Okuma, Akabane & Nakahama 1978 [5]"),
    _setting(9, 0, 0.020, 0, 5.67, 0.03, 0.0, "Okuma, Akabane & Nakahama 1978 [5]"),
    _setting(10, 0, 0, 0.008, 1.00, 0.48, 0.0, "Suzuno, Sawayama & Kawabata 1992 [3]"),
    _setting(11, 0, 0, 0.010, 1.50, 0.33, 0.01, "Suzuno, Sawayama & Kawabata 1992 [3]"),
    _setting(12, 0, 0, 0.012, 2.70, 0.28, 0.02, "Murayama 1992 [17]"),
    _setting(13, 0, 0, 0.030, 2.21, 0.20, 1.95, "Murayama 1992 [17]"),
)


@dataclass(frozen=True)
class DishStudy:
    """One Table II(b) row: an emulsion-gel dish with measured texture."""

    name: str
    texture: TextureProfile
    gels: Mapping[str, float]
    emulsions: Mapping[str, float] = field(default_factory=dict)
    source: str = ""

    def __post_init__(self) -> None:
        gels = {k: float(v) for k, v in self.gels.items() if v}
        emulsions = {k: float(v) for k, v in self.emulsions.items() if v}
        if set(gels) - set(GEL_NAMES):
            raise ValueError(f"unknown gels for dish {self.name!r}")
        if set(emulsions) - set(EMULSION_NAMES):
            raise ValueError(f"unknown emulsions for dish {self.name!r}")
        object.__setattr__(self, "gels", MappingProxyType(gels))
        object.__setattr__(self, "emulsions", MappingProxyType(emulsions))

    def gel_vector(self) -> np.ndarray:
        """Gel concentrations in canonical order."""
        return np.array([self.gels.get(n, 0.0) for n in GEL_NAMES])

    def emulsion_vector(self) -> np.ndarray:
        """Emulsion concentrations in canonical order."""
        return np.array([self.emulsions.get(n, 0.0) for n in EMULSION_NAMES])

    def composition(self) -> Composition:
        """The dish as a :class:`Composition`."""
        return Composition(gels=dict(self.gels), emulsions=dict(self.emulsions))


#: Table II(b), first row: Bavarois (Kawabata & Sawayama 1974 [20]).
BAVAROIS = DishStudy(
    name="Bavarois",
    texture=TextureProfile(hardness=3.860, cohesiveness=0.809, adhesiveness=0.095),
    gels={"gelatin": 0.025},
    emulsions={"egg_yolk": 0.08, "cream": 0.2, "milk": 0.4},
    source="Kawabata & Sawayama 1974 [20]",
)

#: Table II(b), second row: Milk jelly (Motegi 1975 [21]).
MILK_JELLY = DishStudy(
    name="Milk jelly",
    texture=TextureProfile(hardness=1.83, cohesiveness=0.27, adhesiveness=0.44),
    gels={"gelatin": 0.025},
    emulsions={"sugar": 0.032, "milk": 0.787},
    source="Motegi 1975 [21]",
)

#: Both Table II(b) dishes in paper order.
DISH_STUDIES: tuple[DishStudy, ...] = (BAVAROIS, MILK_JELLY)


def setting_by_id(data_id: int) -> EmpiricalSetting:
    """Look up a Table I row by its data id (1–13)."""
    for setting in TABLE_I:
        if setting.data_id == data_id:
            return setting
    raise KeyError(f"no Table I setting with id {data_id}")
