"""Two-bite texture-profile-analysis (TPA) rheometer simulation.

Implements the instrument of the paper's Fig 2: a disc probe descends
onto a gel sample, compresses it, ascends, and repeats — imitating two
chews. The simulated force-time curve exhibits the landmarks the paper
describes:

* a positive peak **F1** during the first compression, after which the
  network yields and the force falls ("the food shape begins to
  collapse");
* a negative force region during the first ascent as the sample sticks
  to the probe (area **b**);
* a smaller positive area during the second compression because only a
  ``recovery`` fraction of the network survived the first bite (areas
  **c** vs **a**).

:meth:`TPACurve.extract` computes the attributes from the raw curve the
way a rheometer's software does — numerically, with no access to the
material parameters — so hardness = F1, cohesiveness = c/a and
adhesiveness = |b| are genuine measurements of the simulated curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RheologyError
from repro.rheology.attributes import TextureProfile
from repro.rheology.material import MaterialParameters
from repro.rheology.ru import REFERENCE_PROBE_AREA_M2
from repro.rng import RngLike, ensure_rng

#: Fraction of the yield-point stress the fractured network retains.
_FRACTURE_RESIDUAL = 0.6
#: Strain scale over which post-yield stress relaxes to the residual.
_FRACTURE_WIDTH = 0.08
#: Duration of the adhesive pull-off pulse, as a fraction of the ascent.
_ADHESION_FRACTION = 0.3
#: Maximum permanent set after the first bite, as a fraction of the peak
#: strain: a material with springiness 0 starts its second compression
#: this much "late" because the sample did not spring back to height.
_PERMANENT_SET_FRACTION = 0.3
#: Contact-detection threshold for onset extraction (fraction of the
#: bite's peak force).
_ONSET_THRESHOLD = 0.02


@dataclass(frozen=True)
class TPACurve:
    """A simulated two-bite force-time curve.

    ``time`` in seconds, ``force`` in newtons (= RU on the reference
    probe), ``strain`` is the imposed sample strain, and ``bite`` labels
    each sample point with its chew index (1 or 2).
    """

    time: np.ndarray
    force: np.ndarray
    strain: np.ndarray
    bite: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.time)
        if not (len(self.force) == len(self.strain) == len(self.bite) == n):
            raise RheologyError("curve arrays must have equal length")
        if n < 8:
            raise RheologyError("curve too short to analyse")

    def _areas(self, mask: np.ndarray, positive: bool) -> float:
        force = np.where(mask, self.force, 0.0)
        force = np.clip(force, 0.0, None) if positive else np.clip(force, None, 0.0)
        return float(np.trapezoid(force, self.time))

    def _bite_travel(self, mask: np.ndarray) -> float:
        """Strain distance from contact onset to peak strain in one bite's
        descent (the TPA "length" used for springiness)."""
        descending = np.gradient(self.strain, self.time) > 0
        descent = mask & descending
        if not descent.any():
            return 0.0
        forces = self.force[descent]
        strains = self.strain[descent]
        peak = float(forces.max())
        if peak <= 0.0:
            return 0.0
        onset_indices = np.flatnonzero(forces > _ONSET_THRESHOLD * peak)
        if onset_indices.size == 0:
            return 0.0
        onset = float(strains[onset_indices[0]])
        return max(float(strains.max()) - onset, 0.0)

    def extract(self) -> TextureProfile:
        """Compute the Fig 2 attributes (plus springiness) from the curve."""
        first = self.bite == 1
        second = self.bite == 2
        if not first.any() or not second.any():
            raise RheologyError("curve must contain two bites")
        ascending = np.gradient(self.strain, self.time) < 0
        f1 = float(np.max(self.force[first]))
        area_a = self._areas(first, positive=True)
        area_b = self._areas(first & ascending, positive=False)
        area_c = self._areas(second, positive=True)
        if area_a <= 0.0:
            raise RheologyError("first-bite work is non-positive")
        travel_1 = self._bite_travel(first)
        travel_2 = self._bite_travel(second)
        springiness = (
            min(max(travel_2 / travel_1, 0.0), 1.5) if travel_1 > 0 else None
        )
        return TextureProfile(
            hardness=max(f1, 0.0),
            cohesiveness=min(max(area_c / area_a, 0.0), 1.0),
            adhesiveness=abs(area_b),
            springiness=springiness,
        )


class Rheometer:
    """The simulated instrument.

    Parameters
    ----------
    strain_max:
        Peak imposed strain per chew (default 70 %, the common TPA
        setting).
    stroke_seconds:
        Duration of each descent and each ascent.
    samples_per_stroke:
        Sampling resolution of the force transducer.
    probe_area_m2:
        Probe disc area; defaults to the RU reference plunger.
    noise_ru:
        Standard deviation of additive transducer noise, in RU.
    """

    def __init__(
        self,
        strain_max: float = 0.7,
        stroke_seconds: float = 1.0,
        samples_per_stroke: int = 250,
        probe_area_m2: float = REFERENCE_PROBE_AREA_M2,
        noise_ru: float = 0.0,
    ) -> None:
        if not 0.05 <= strain_max <= 0.95:
            raise RheologyError(f"strain_max out of range: {strain_max}")
        if stroke_seconds <= 0 or samples_per_stroke < 8:
            raise RheologyError("degenerate stroke configuration")
        self.strain_max = strain_max
        self.stroke_seconds = stroke_seconds
        self.samples_per_stroke = samples_per_stroke
        self.probe_area_m2 = probe_area_m2
        self.noise_ru = noise_ru

    # -- stress model ---------------------------------------------------

    def _loading_stress(self, material: MaterialParameters, strain: np.ndarray) -> np.ndarray:
        """Stress (kPa) along a monotone compression ramp."""
        elastic = material.modulus_kpa * strain
        peak = material.modulus_kpa * material.yield_strain
        over = strain > material.yield_strain
        relax = _FRACTURE_RESIDUAL + (1 - _FRACTURE_RESIDUAL) * np.exp(
            -(strain - material.yield_strain) / _FRACTURE_WIDTH
        )
        return np.where(over, peak * relax, elastic)

    def _compression_force(
        self, material: MaterialParameters, strain: np.ndarray, rate: float
    ) -> np.ndarray:
        stress = self._loading_stress(material, strain)
        stress = stress + material.viscosity_kpa_s * rate * (strain > 0.01)
        return stress * 1000.0 * self.probe_area_m2  # kPa → Pa → N

    def _ascent_force(
        self,
        material: MaterialParameters,
        phase: np.ndarray,
        peak_force: float,
    ) -> np.ndarray:
        """Force during an ascent: rapid elastic release, then adhesion."""
        release = peak_force * np.clip(1.0 - phase / 0.15, 0.0, 1.0) ** 2
        pulse = np.zeros_like(phase)
        window = (phase > 0.15) & (phase < 0.15 + _ADHESION_FRACTION)
        local = (phase[window] - 0.15) / _ADHESION_FRACTION
        # half-sine pull-off pulse whose time-integral equals the
        # material's adhesion parameter (in RU·s on the reference probe)
        amplitude = material.adhesion_j_m2 * np.pi / (
            2.0 * _ADHESION_FRACTION * self.stroke_seconds
        )
        pulse[window] = -amplitude * np.sin(np.pi * local)
        return release + pulse

    # -- the measurement --------------------------------------------------

    def run(self, material: MaterialParameters, rng: RngLike = None) -> TPACurve:
        """Run a two-bite measurement and return the force-time curve."""
        n = self.samples_per_stroke
        dt = self.stroke_seconds / n
        rate = self.strain_max / self.stroke_seconds
        ramp = np.linspace(0.0, self.strain_max, n, endpoint=False)
        phase = np.linspace(0.0, 1.0, n, endpoint=False)

        times, forces, strains, bites = [], [], [], []
        t0 = 0.0
        for bite_index, bite_material in ((1, material), (2, material.damaged())):
            if bite_index == 1:
                effective = ramp
            else:
                # permanent set: the sample did not fully spring back, so
                # the probe travels through air before re-contact
                offset = (
                    (1.0 - material.springiness)
                    * _PERMANENT_SET_FRACTION
                    * self.strain_max
                )
                effective = np.clip(ramp - offset, 0.0, None)
            down = self._compression_force(bite_material, effective, rate)
            peak = float(down[-1]) * 0.2  # residual contact force at reversal
            up = self._ascent_force(bite_material, phase, peak)
            force = np.concatenate([down, up])
            strain = np.concatenate([ramp, self.strain_max * (1.0 - phase)])
            time = t0 + dt * np.arange(2 * n)
            times.append(time)
            forces.append(force)
            strains.append(strain)
            bites.append(np.full(2 * n, bite_index))
            t0 = float(time[-1]) + dt

        force = np.concatenate(forces)
        if self.noise_ru > 0.0:
            force = force + ensure_rng(rng).normal(0.0, self.noise_ru, len(force))
        return TPACurve(
            time=np.concatenate(times),
            force=force,
            strain=np.concatenate(strains),
            bite=np.concatenate(bites),
        )

    def measure(self, material: MaterialParameters, rng: RngLike = None) -> TextureProfile:
        """Run a measurement and extract the texture profile."""
        return self.run(material, rng=rng).extract()
