"""Viscoelastic material parameters of a gel sample.

These are the knobs the rheometer simulation
(:mod:`repro.rheology.rheometer`) feels:

* ``modulus_kpa`` — small-strain elastic modulus. Determines the slope of
  the force ramp during compression and hence F1 (hardness).
* ``yield_strain`` — strain at which the gel network starts to fracture;
  beyond it force stops growing and partially collapses (the paper's
  "food shape begins to collapse" in Fig 2).
* ``recovery`` — fraction of the network surviving the first bite; the
  second compression sees ``recovery × modulus``, so the work ratio c/a
  (cohesiveness) tracks it.
* ``adhesion_j_m2`` — work of adhesion between probe and sample; sets the
  negative-force area during the first ascent (adhesiveness).
* ``viscosity_kpa_s`` — rate-dependent stress term, a minor contribution
  that keeps curves from being ideal triangles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MaterialParameters:
    """Parameters of the simulated viscoelastic gel."""

    modulus_kpa: float
    yield_strain: float = 0.45
    recovery: float = 0.3
    adhesion_j_m2: float = 0.0
    viscosity_kpa_s: float = 0.05
    #: Height-recovery between bites: 1 = sample springs back fully, 0 =
    #: maximal permanent set. Drives the TPA springiness measurement.
    springiness: float = 0.7

    def __post_init__(self) -> None:
        checks = {
            "modulus_kpa": (self.modulus_kpa, 0.0, np.inf),
            "yield_strain": (self.yield_strain, 0.01, 0.95),
            "recovery": (self.recovery, 0.0, 1.0),
            "adhesion_j_m2": (self.adhesion_j_m2, 0.0, np.inf),
            "viscosity_kpa_s": (self.viscosity_kpa_s, 0.0, np.inf),
            "springiness": (self.springiness, 0.0, 1.0),
        }
        for name, (value, low, high) in checks.items():
            if not np.isfinite(value) and high is np.inf and value == np.inf:
                raise ValueError(f"{name} must be finite")
            if not (low <= value <= high):
                raise ValueError(
                    f"{name} must lie in [{low}, {high}], got {value}"
                )

    def damaged(self) -> "MaterialParameters":
        """The material as the second bite sees it (post first fracture)."""
        return MaterialParameters(
            modulus_kpa=self.modulus_kpa * self.recovery,
            yield_strain=self.yield_strain,
            recovery=self.recovery,
            # adhesion mostly spent on the first pull-off
            adhesion_j_m2=self.adhesion_j_m2 * 0.25,
            viscosity_kpa_s=self.viscosity_kpa_s,
            springiness=self.springiness,
        )
