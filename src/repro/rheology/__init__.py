"""Food-science substrate: quantitative texture.

Implements everything the paper borrows from food-science research:

* :mod:`repro.rheology.attributes` — the texture profile
  (hardness / cohesiveness / adhesiveness) in rheological units (RU);
* :mod:`repro.rheology.rheometer` — a two-bite texture-profile-analysis
  instrument simulation exactly following the paper's Fig 2 semantics;
* :mod:`repro.rheology.gel_system` — a response-surface model mapping
  gel + emulsion composition to material parameters and texture,
  calibrated to the paper's Table I and Table II(b);
* :mod:`repro.rheology.studies` — the empirical data of Tables I and
  II(b), transcribed verbatim.
"""

from repro.rheology.attributes import TextureProfile
from repro.rheology.gel_system import Composition, GelSystemModel
from repro.rheology.rheometer import Rheometer, TPACurve
from repro.rheology.studies import (
    BAVAROIS,
    MILK_JELLY,
    TABLE_I,
    DishStudy,
    EmpiricalSetting,
)

__all__ = [
    "TextureProfile",
    "Composition",
    "GelSystemModel",
    "Rheometer",
    "TPACurve",
    "TABLE_I",
    "BAVAROIS",
    "MILK_JELLY",
    "DishStudy",
    "EmpiricalSetting",
]
