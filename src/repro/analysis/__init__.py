"""Project-specific static analysis for the ``repro`` codebase.

The determinism, unit-safety and numerical-stability guarantees this
package makes are invariants of *discipline*, not of any one function:
all randomness flows through :mod:`repro.rng` (RNG001), all matrix
inversions through the guarded helpers in :mod:`repro.core.linalg`
(NUM001), all −log transforms are clamped (NUM002), public surfaces
raise only :class:`~repro.errors.ReproError` subclasses (EXC001), and
parallel tasks are picklable with explicit RNG streams (PAR001). This
package enforces those invariants mechanically, so refactors in future
perf/scale PRs cannot silently erode them.

On top of the per-file rules sits a small data-flow engine
(:mod:`repro.analysis.graph`): a module import graph, a per-function
call graph and a class attribute-access index feed the project-wide
rules — THR001 (lock discipline in concurrent classes), DET001
(fingerprint purity: no wall-clock/entropy/env/set-order on paths
reachable from ``Stage.compute``), OBS001 (span/metric names must be
registered in :mod:`repro.obs.names`) and EXC002 (every error family
mapped in ``status_of``; serve error returns use the uniform
envelope).

Usage::

    python -m repro.analysis [paths...] [--format json|sarif]
    repro lint [paths...] [--check-ratchet]

Findings can be silenced per line with ``# repro: noqa[RULE]`` (plus a
written reason), or accepted wholesale in ``analysis-baseline.json`` so
only *new* violations fail CI. See ``docs/static-analysis.md``.
"""

from repro.analysis.baseline import (
    Baseline,
    RatchetReport,
    check_ratchet,
    fingerprint,
    fingerprint_all,
)
from repro.analysis.core import (
    FileContext,
    ImportTable,
    Rule,
    SuppressionIndex,
    Violation,
)
from repro.analysis.graph import ProjectContext
from repro.analysis.rules import RULE_CLASSES, default_rules, rules_by_code
from repro.analysis.runner import (
    RunResult,
    analyze_paths,
    discover,
    render_json,
    render_text,
)
from repro.analysis.sarif import render_sarif

__all__ = [
    "Baseline",
    "FileContext",
    "ImportTable",
    "ProjectContext",
    "RULE_CLASSES",
    "RatchetReport",
    "Rule",
    "RunResult",
    "SuppressionIndex",
    "Violation",
    "analyze_paths",
    "check_ratchet",
    "default_rules",
    "discover",
    "fingerprint",
    "fingerprint_all",
    "render_json",
    "render_sarif",
    "render_text",
    "rules_by_code",
]
