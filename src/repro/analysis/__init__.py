"""Project-specific static analysis for the ``repro`` codebase.

The determinism, unit-safety and numerical-stability guarantees this
package makes are invariants of *discipline*, not of any one function:
all randomness flows through :mod:`repro.rng` (RNG001), all matrix
inversions through the guarded helpers in :mod:`repro.core.linalg`
(NUM001), all −log transforms are clamped (NUM002), public surfaces
raise only :class:`~repro.errors.ReproError` subclasses (EXC001), and
parallel tasks are picklable with explicit RNG streams (PAR001). This
package enforces those invariants mechanically, so refactors in future
perf/scale PRs cannot silently erode them.

Usage::

    python -m repro.analysis [paths...] [--format json]
    repro lint [paths...]

Findings can be silenced per line with ``# repro: noqa[RULE]`` (plus a
written reason), or accepted wholesale in ``analysis-baseline.json`` so
only *new* violations fail CI. See ``docs/static-analysis.md``.
"""

from repro.analysis.baseline import Baseline, fingerprint, fingerprint_all
from repro.analysis.core import (
    FileContext,
    ImportTable,
    Rule,
    SuppressionIndex,
    Violation,
)
from repro.analysis.rules import RULE_CLASSES, default_rules, rules_by_code
from repro.analysis.runner import (
    RunResult,
    analyze_paths,
    discover,
    render_json,
    render_text,
)

__all__ = [
    "Baseline",
    "FileContext",
    "ImportTable",
    "RULE_CLASSES",
    "Rule",
    "RunResult",
    "SuppressionIndex",
    "Violation",
    "analyze_paths",
    "default_rules",
    "discover",
    "fingerprint",
    "fingerprint_all",
    "render_json",
    "render_text",
    "rules_by_code",
]
