"""DET001: fingerprint purity for cached pipeline stages.

The artifact store's correctness contract is that a stage fingerprint
plus its inputs fully determine its payload bytes — a cached run must
be bit-identical to a fresh one. Any wall-clock read, OS entropy,
environment lookup or unordered ``set`` iteration on a code path
reachable from ``Stage.compute`` (or from the fingerprint helpers
themselves) silently desynchronises cached vs. fresh runs.

The rule walks the project call graph (``ProjectContext.reachable_from``)
starting at every ``compute``/``config_of`` method of a ``Stage``
subclass and every function in ``repro.artifacts.fingerprint``, then
flags hazards inside any reached function:

* wall-clock: ``time.time``, ``time.time_ns``, ``datetime.now`` & co.
  (``time.monotonic``/``perf_counter`` are fine — they never feed
  payloads, only telemetry);
* entropy: ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``;
* environment reads not routed through config: ``os.getenv``,
  ``os.environ[...]``;
* unordered ``set`` iteration feeding serialisation (``for x in {...}``,
  ``list(set(...))``, ``"".join(set(...))``) — ``sorted(set(...))`` is
  the deterministic spelling.

``repro.obs`` and ``repro.parallel`` are exempt: their timing calls are
telemetry by design and never reach payload bytes.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.core import Rule, Violation
from repro.analysis.graph import (
    FunctionInfo,
    ProjectContext,
    is_product_path,
    iter_own_nodes,
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ENTROPY = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.choice",
    }
)

_ENV_READS = frozenset({"os.getenv", "os.environ.get"})

#: Modules whose reachable code may read clocks: telemetry by design,
#: structurally unable to feed payload bytes.
_EXEMPT_MODULE_PREFIXES = ("repro.obs", "repro.parallel")

#: Collection constructors whose argument being a set means the
#: element order leaks into the output.
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple"})


class FingerprintPurityRule(Rule):
    code: ClassVar[str] = "DET001"
    name: ClassVar[str] = "fingerprint-purity"
    severity: ClassVar[str] = "error"
    project_wide: ClassVar[bool] = True
    description: ClassVar[str] = (
        "Code reachable from Stage.compute or the fingerprint helpers "
        "must be pure: no wall-clock, OS entropy, raw environment reads "
        "or unordered set iteration — they desynchronise cached vs. "
        "fresh runs."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        root_of = project.reachable_from(self._roots(project))
        for qualname in sorted(root_of):
            info = project.functions[qualname]
            if not is_product_path(info.ctx.relpath):
                continue
            if info.module.startswith(_EXEMPT_MODULE_PREFIXES):
                continue
            yield from self._check_function(info, root_of[qualname])

    #: Modules whose every function is a fingerprint input and therefore
    #: a purity root: the canonicalise/hash helpers, and the chunked
    #: payload digests (a chunk's SHA-256 is rolled into its artifact's
    #: provenance, so wall-clock or entropy in chunk bytes would split
    #: cache entries between identical corpora).
    _ROOT_MODULES: ClassVar[tuple[str, ...]] = (
        "repro.artifacts.chunks",
        "repro.artifacts.fingerprint",
    )

    @classmethod
    def _roots(cls, project: ProjectContext) -> list[str]:
        roots: list[str] = []
        for stage_cls in project.classes_with_base("Stage"):
            for method in ("compute", "config_of"):
                qualname = f"{stage_cls.qualname}.{method}"
                if qualname in project.functions:
                    roots.append(qualname)
        for qualname, info in project.functions.items():
            if info.module in cls._ROOT_MODULES:
                roots.append(qualname)
        return sorted(set(roots))

    def _check_function(
        self, info: FunctionInfo, root: str
    ) -> Iterator[Violation]:
        where = (
            f"in {info.qualname}"
            if info.qualname == root
            else f"in {info.qualname}, reachable from {root}"
        )
        for dotted, call in info.external_calls:
            if dotted in _WALL_CLOCK:
                yield self.violation(
                    info.ctx,
                    call,
                    f"wall-clock read {dotted}() {where}: cached and "
                    "fresh runs would diverge; thread timestamps through "
                    "config or stage inputs instead",
                )
            elif dotted in _ENTROPY:
                yield self.violation(
                    info.ctx,
                    call,
                    f"OS entropy {dotted}() {where}: all randomness on "
                    "fingerprinted paths must flow through repro.rng "
                    "seeded streams",
                )
            elif dotted in _ENV_READS:
                yield self.violation(
                    info.ctx,
                    call,
                    f"environment read {dotted}() {where}: route runtime "
                    "knobs through config so they land in the fingerprint",
                )
        yield from self._scan_body(info, where)

    def _scan_body(self, info: FunctionInfo, where: str) -> Iterator[Violation]:
        set_locals = self._set_locals(info)
        for node in iter_own_nodes(info.node):
            if isinstance(node, ast.Subscript) and self._is_os_environ(
                info, node.value
            ):
                yield self.violation(
                    info.ctx,
                    node,
                    f"os.environ[...] read {where}: route runtime knobs "
                    "through config so they land in the fingerprint",
                )
            elif isinstance(node, ast.For) and self._is_set_expr(
                info, node.iter, set_locals
            ):
                yield self.violation(
                    info.ctx,
                    node,
                    f"iteration over an unordered set {where}: wrap in "
                    "sorted(...) so element order cannot leak into the "
                    "payload",
                )
            elif isinstance(node, ast.Call) and self._consumes_set_order(
                info, node, set_locals
            ):
                yield self.violation(
                    info.ctx,
                    node,
                    f"set materialised in iteration order {where}: wrap "
                    "in sorted(...) so element order cannot leak into "
                    "the payload",
                )

    @staticmethod
    def _is_os_environ(info: FunctionInfo, expr: ast.expr) -> bool:
        return info.ctx.imports.resolve(expr) == "os.environ"

    @classmethod
    def _set_locals(cls, info: FunctionInfo) -> frozenset[str]:
        """Local names whose every plain binding in this function is a
        set expression — the one-hop data-flow that lets
        ``seen = {...}; for k in seen:`` be flagged like the literal."""
        set_bound: set[str] = set()
        other_bound: set[str] = set()
        for node in iter_own_nodes(info.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if cls._is_set_expr(info, node.value, frozenset()):
                    set_bound.add(target.id)
                else:
                    other_bound.add(target.id)
        return frozenset(set_bound - other_bound)

    @staticmethod
    def _is_set_expr(
        info: FunctionInfo, expr: ast.expr, set_locals: frozenset[str]
    ) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name) and expr.id in set_locals:
            return True
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
            # a local alias shadowing the builtin resolves elsewhere
            and expr.func.id not in info.ctx.imports.aliases
        ):
            return True
        return False

    def _consumes_set_order(
        self, info: FunctionInfo, call: ast.Call, set_locals: frozenset[str]
    ) -> bool:
        if not (
            isinstance(call.func, ast.Name)
            and call.func.id in _ORDER_SENSITIVE_CONSUMERS
            and call.func.id not in info.ctx.imports.aliases
        ):
            if not (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "join"
            ):
                return False
        return len(call.args) == 1 and self._is_set_expr(
            info, call.args[0], set_locals
        )
