"""THR001: lock-discipline inference for concurrent classes.

Builds on the class attribute-access index in
:mod:`repro.analysis.graph`: for every class that either owns a lock
attribute or spawns threads, model which ``self.*`` attributes are
written under ``with self._lock:`` and which outside it.

* **Mixed discipline** — an attribute written both under the lock and
  without it (outside ``__init__``) is a data race waiting for a
  scheduler: the unlocked write tears the invariant the locked writers
  maintain.
* **Unguarded shared write** — in a thread-*spawning* class, a
  non-init write with no lock held to an attribute that more than one
  method touches crosses the spawned thread's boundary unprotected.

Init-only attributes (written in ``__init__``/``__post_init__`` before
any thread can observe the instance) and pure-read attributes are
exempt by construction.
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from repro.analysis.core import Rule, Violation
from repro.analysis.graph import (
    INIT_METHODS,
    ClassInfo,
    ProjectContext,
    is_product_path,
)


class LockDisciplineRule(Rule):
    code: ClassVar[str] = "THR001"
    name: ClassVar[str] = "lock-discipline"
    severity: ClassVar[str] = "error"
    project_wide: ClassVar[bool] = True
    description: ClassVar[str] = (
        "In a class that owns a lock or spawns threads, every non-init "
        "write to a shared attribute must hold the lock: mixed "
        "locked/unlocked writes (or unguarded writes to attributes other "
        "methods touch) are data races."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        for qualname in sorted(project.classes):
            cls = project.classes[qualname]
            if not is_product_path(cls.ctx.relpath):
                continue
            if not cls.lock_attrs and not cls.spawns_thread:
                continue
            yield from self._check_class(cls)

    def _check_class(self, cls: ClassInfo) -> Iterator[Violation]:
        lock_name = sorted(cls.lock_attrs)[0] if cls.lock_attrs else "_lock"
        for attr, writes in sorted(cls.writes().items()):
            non_init = [w for w in writes if w.method not in INIT_METHODS]
            if not non_init:
                continue  # init-only: published before threads exist
            locked = [w for w in writes if w.under_lock]
            unlocked = [w for w in non_init if not w.under_lock]
            if locked and unlocked:
                for access in unlocked:
                    yield self.violation(
                        cls.ctx,
                        access.node,
                        f"{cls.name}.{attr} is written under "
                        f"`with self.{lock_name}:` elsewhere but without it "
                        f"in {access.method}(); mixed lock discipline is a "
                        "data race",
                    )
            elif (
                cls.spawns_thread
                and unlocked
                and len(cls.accessing_methods(attr)) > 1
            ):
                for access in unlocked:
                    yield self.violation(
                        cls.ctx,
                        access.node,
                        f"{cls.name} spawns threads but writes shared "
                        f"attribute {attr} in {access.method}() without "
                        f"holding self.{lock_name}",
                    )
