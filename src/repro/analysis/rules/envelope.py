"""EXC002: error-envelope completeness for the serving layer.

The service's error contract has two halves, and both rot silently:

* **Status completeness** — every direct :class:`~repro.errors.ReproError`
  subclass (an error *family*) must appear in
  :func:`repro.serve.app.status_of`'s mapping. A new family that is
  never mapped falls through to the catch-all 500, which turns, say, a
  client-side unit typo into a server error in every dashboard.
* **Envelope uniformity** — every serve-layer code path that returns an
  HTTP error status (``return 4xx/5xx, payload``) must build the
  payload with :func:`repro.serve.schemas.error_body`, so clients can
  always read ``{"error": {"type", "message"}}``.

The rule is project-wide: it reads the class hierarchy out of
``repro/errors.py`` and cross-references it against the names mentioned
in ``repro/serve/app.py``'s ``status_of`` (or any module-level
``*STATUS*`` table it dispatches over).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.core import FileContext, Rule, Violation
from repro.analysis.graph import ProjectContext, is_product_path

_ERRORS_SUFFIX = "repro/errors.py"
_APP_SUFFIX = "repro/serve/app.py"
_SERVE_FRAGMENT = "repro/serve/"


class ErrorEnvelopeRule(Rule):
    code: ClassVar[str] = "EXC002"
    name: ClassVar[str] = "error-envelope-completeness"
    severity: ClassVar[str] = "error"
    project_wide: ClassVar[bool] = True
    description: ClassVar[str] = (
        "Every ReproError family needs an explicit status_of mapping, "
        "and every serve-layer error return must use the uniform "
        "error_body envelope."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        errors_ctx = self._find(project, _ERRORS_SUFFIX)
        app_ctx = self._find(project, _APP_SUFFIX)
        if errors_ctx is not None and app_ctx is not None:
            yield from self._check_status_completeness(errors_ctx, app_ctx)
        for relpath in sorted(project.contexts):
            if _SERVE_FRAGMENT in relpath and is_product_path(relpath):
                yield from self._check_envelopes(project.contexts[relpath])

    @staticmethod
    def _find(project: ProjectContext, suffix: str) -> FileContext | None:
        for relpath, ctx in project.contexts.items():
            if relpath.endswith(suffix) and is_product_path(relpath):
                return ctx
        return None

    # -- status completeness -------------------------------------------

    def _check_status_completeness(
        self, errors_ctx: FileContext, app_ctx: FileContext
    ) -> Iterator[Violation]:
        mapped = self._mapped_names(app_ctx)
        if not mapped:
            return  # no status_of at all: nothing to cross-reference
        for node in errors_ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if "ReproError" not in {
                base.id for base in node.bases if isinstance(base, ast.Name)
            }:
                continue
            if node.name not in mapped:
                yield self.violation(
                    errors_ctx,
                    node,
                    f"error family {node.name} has no status_of mapping in "
                    "repro.serve.app: it would fall through to the "
                    "catch-all 500",
                )

    @staticmethod
    def _mapped_names(app_ctx: FileContext) -> set[str]:
        """Class names referenced by ``status_of`` or by a module-level
        ``*STATUS*`` dispatch table."""
        names: set[str] = set()
        for node in app_ctx.tree.body:
            is_table = isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and "STATUS" in t.id
                for t in node.targets
            )
            is_table = is_table or (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and "STATUS" in node.target.id
            )
            is_status_of = (
                isinstance(node, ast.FunctionDef) and node.name == "status_of"
            )
            if not (is_table or is_status_of):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        return names

    # -- envelope uniformity -------------------------------------------

    def _check_envelopes(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Return) or not isinstance(
                node.value, ast.Tuple
            ):
                continue
            elts = node.value.elts
            if len(elts) != 2:
                continue
            status = elts[0]
            if not (
                isinstance(status, ast.Constant)
                and isinstance(status.value, int)
                and status.value >= 400
            ):
                continue
            if not self._is_error_body(elts[1]):
                yield self.violation(
                    ctx,
                    node,
                    f"HTTP {status.value} returned without the uniform "
                    "error_body(...) envelope: clients expect "
                    '{"error": {"type", "message"}}',
                )

    @staticmethod
    def _is_error_body(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name == "error_body"
