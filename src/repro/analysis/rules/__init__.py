"""Rule registry: one place that knows every project-specific rule."""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.determinism import FingerprintPurityRule
from repro.analysis.rules.envelope import ErrorEnvelopeRule
from repro.analysis.rules.exceptions import ExceptionDisciplineRule
from repro.analysis.rules.numerics import GuardedLinalgRule, LogClampRule
from repro.analysis.rules.obs import ObservabilityNameRule
from repro.analysis.rules.parallel import ParallelTaskRule
from repro.analysis.rules.rng import KernelRngRule, RngDisciplineRule
from repro.analysis.rules.threading import LockDisciplineRule

#: Every registered rule class, in report order.
RULE_CLASSES: tuple[type[Rule], ...] = (
    RngDisciplineRule,
    KernelRngRule,
    GuardedLinalgRule,
    LogClampRule,
    ExceptionDisciplineRule,
    ParallelTaskRule,
    LockDisciplineRule,
    FingerprintPurityRule,
    ObservabilityNameRule,
    ErrorEnvelopeRule,
)


def default_rules() -> tuple[Rule, ...]:
    """Fresh instances of every registered rule."""
    return tuple(cls() for cls in RULE_CLASSES)


def rules_by_code(codes: tuple[str, ...] | None = None) -> tuple[Rule, ...]:
    """Rules restricted to ``codes`` (all rules when ``None``)."""
    if codes is None:
        return default_rules()
    wanted = {c.upper() for c in codes}
    known = {cls.code for cls in RULE_CLASSES}
    unknown = wanted - known
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return tuple(cls() for cls in RULE_CLASSES if cls.code in wanted)


__all__ = [
    "RULE_CLASSES",
    "default_rules",
    "rules_by_code",
    "RngDisciplineRule",
    "KernelRngRule",
    "GuardedLinalgRule",
    "LogClampRule",
    "ExceptionDisciplineRule",
    "ParallelTaskRule",
    "LockDisciplineRule",
    "FingerprintPurityRule",
    "ObservabilityNameRule",
    "ErrorEnvelopeRule",
]
