"""RNG001/RNG002 — all randomness flows through :mod:`repro.rng`.

PR 1's backend-independent determinism guarantee holds only if every
random draw comes from a generator that was seeded and spawned through
``repro.rng`` (or passed in as an explicit ``Generator`` argument). A
single ``np.random.default_rng(...)`` or stdlib ``random.random()``
buried in a helper silently re-seeds outside the experiment's stream
and breaks bit-reproducibility across runs and backends.

RNG002 tightens the contract inside the token-kernel layer: a
``TokenKernel`` draws randomness **only** from the ``Generator`` its
caller passes into ``sweep()``. Minting a fresh stream inside a kernel
(``ensure_rng``/``spawn``/``derive``) would decouple the kernel's draw
sequence from the sampler's seeded chain, so batched, restarted and
parallel runs would stop replaying bit-for-bit even though every draw
still "goes through repro.rng".
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.core import FileContext, Rule, Violation
from repro.analysis.graph import (
    ProjectContext,
    is_product_path,
)

#: Calling *anything* under these prefixes creates or drives a stream
#: outside repro.rng. Attribute access (``rng: np.random.Generator``
#: annotations, ``isinstance`` checks) is not a call and stays legal.
_BANNED_PREFIXES = ("numpy.random.", "random.")

#: ``random`` the *module* being called is impossible; these are the
#: stdlib module's callables that matter in practice, but any call
#: resolving into the module is flagged, so the set is documentation.
_STDLIB_EXAMPLES = ("random.seed", "random.random", "random.shuffle")


class RngDisciplineRule(Rule):
    code: ClassVar[str] = "RNG001"
    name: ClassVar[str] = "rng-discipline"
    severity: ClassVar[str] = "error"
    description: ClassVar[str] = (
        "no direct numpy.random.* / stdlib random.* calls outside "
        "repro/rng.py; obtain streams via repro.rng.ensure_rng/spawn/"
        "derive or accept an explicit Generator parameter"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = ("repro/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target is None:
                continue
            if any(target.startswith(p) for p in _BANNED_PREFIXES):
                yield self.violation(
                    ctx,
                    node,
                    f"direct call to {target} bypasses repro.rng; route "
                    "randomness through repro.rng.ensure_rng/spawn/derive "
                    "or an explicit Generator parameter",
                )


#: Stream factories that are fine everywhere *except* inside a kernel:
#: the kernel contract is that the caller owns seeding.
_STREAM_FACTORIES = frozenset(
    {"repro.rng.ensure_rng", "repro.rng.spawn", "repro.rng.derive"}
)


class KernelRngRule(Rule):
    code: ClassVar[str] = "RNG002"
    name: ClassVar[str] = "kernel-rng-discipline"
    severity: ClassVar[str] = "error"
    project_wide: ClassVar[bool] = True
    description: ClassVar[str] = (
        "TokenKernel code draws randomness only from the Generator "
        "passed into sweep(); minting streams via repro.rng "
        "ensure_rng/spawn/derive inside a kernel re-seeds mid-chain and "
        "breaks batched/restart bit-reproducibility"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        root_of = project.reachable_from(self._roots(project))
        for qualname in sorted(root_of):
            info = project.functions[qualname]
            if not is_product_path(info.ctx.relpath):
                continue
            root = root_of[qualname]
            where = (
                f"in {info.qualname}"
                if info.qualname == root
                else f"in {info.qualname}, reachable from {root}"
            )
            for dotted, call in info.external_calls:
                if dotted in _STREAM_FACTORIES:
                    yield self.violation(
                        info.ctx,
                        call,
                        f"kernel stream minting: {dotted}() {where} — "
                        "kernels must draw only from the Generator their "
                        "caller passes into sweep(), or batched/restart "
                        "runs stop replaying bit-for-bit",
                    )

    @staticmethod
    def _roots(project: ProjectContext) -> list[str]:
        """Every method of ``TokenKernel`` and of its subclasses."""
        kernel_classes = {
            cls.qualname
            for cls in project.classes.values()
            if cls.name == "TokenKernel" or "TokenKernel" in cls.bases
        }
        return sorted(
            qualname
            for qualname in project.functions
            if qualname.rsplit(".", 1)[0] in kernel_classes
        )
