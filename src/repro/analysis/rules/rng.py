"""RNG001 — all randomness flows through :mod:`repro.rng`.

PR 1's backend-independent determinism guarantee holds only if every
random draw comes from a generator that was seeded and spawned through
``repro.rng`` (or passed in as an explicit ``Generator`` argument). A
single ``np.random.default_rng(...)`` or stdlib ``random.random()``
buried in a helper silently re-seeds outside the experiment's stream
and breaks bit-reproducibility across runs and backends.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.core import FileContext, Rule, Violation

#: Calling *anything* under these prefixes creates or drives a stream
#: outside repro.rng. Attribute access (``rng: np.random.Generator``
#: annotations, ``isinstance`` checks) is not a call and stays legal.
_BANNED_PREFIXES = ("numpy.random.", "random.")

#: ``random`` the *module* being called is impossible; these are the
#: stdlib module's callables that matter in practice, but any call
#: resolving into the module is flagged, so the set is documentation.
_STDLIB_EXAMPLES = ("random.seed", "random.random", "random.shuffle")


class RngDisciplineRule(Rule):
    code: ClassVar[str] = "RNG001"
    name: ClassVar[str] = "rng-discipline"
    severity: ClassVar[str] = "error"
    description: ClassVar[str] = (
        "no direct numpy.random.* / stdlib random.* calls outside "
        "repro/rng.py; obtain streams via repro.rng.ensure_rng/spawn/"
        "derive or accept an explicit Generator parameter"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = ("repro/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target is None:
                continue
            if any(target.startswith(p) for p in _BANNED_PREFIXES):
                yield self.violation(
                    ctx,
                    node,
                    f"direct call to {target} bypasses repro.rng; route "
                    "randomness through repro.rng.ensure_rng/spawn/derive "
                    "or an explicit Generator parameter",
                )
