"""EXC001 — exception discipline at the public API surface.

The package promises callers that everything it raises derives from
:class:`repro.errors.ReproError` (the CLI turns exactly that base class
into exit code 2). A stray ``ValueError`` from ``cli.py`` or
``pipeline/*`` escapes that contract and surfaces as a traceback.
Additionally — anywhere in the tree — a bare/broad ``except`` needs a
written justification (``# noqa: BLE001 - why`` or
``# repro: noqa[EXC001]``), because silently swallowing ``Exception``
is how determinism bugs hide.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.core import FileContext, Rule, Violation

#: Path fragments that mark a module as public API surface.
_PUBLIC_SURFACES = ("repro/cli.py", "repro/pipeline/")

#: Control-flow exceptions that are not error reporting.
_CONTROL_FLOW = {"SystemExit", "KeyboardInterrupt", "StopIteration", "GeneratorExit"}

#: Fallback when repro.errors cannot be imported (e.g. analysing a
#: checkout from outside the package); kept in sync by
#: tests/analysis/test_rules.py::test_known_error_names_current.
_FALLBACK_ERROR_NAMES = frozenset(
    {
        "ReproError",
        "UnitParseError",
        "UnitConversionError",
        "UnknownIngredientError",
        "UnknownTermError",
        "DictionaryError",
        "CorpusError",
        "StoreError",
        "ModelError",
        "NotFittedError",
        "ConvergenceError",
        "LinkageError",
        "RheologyError",
        "ExperimentError",
        "ParallelError",
    }
)


def known_error_names() -> frozenset[str]:
    """Names of every ReproError subclass, read from the live package."""
    try:
        from repro import errors
    except ImportError:  # pragma: no cover - analysing without the package
        return _FALLBACK_ERROR_NAMES
    names = {
        name
        for name, obj in vars(errors).items()
        if isinstance(obj, type) and issubclass(obj, errors.ReproError)
    }
    return frozenset(names) | _FALLBACK_ERROR_NAMES


class ExceptionDisciplineRule(Rule):
    code: ClassVar[str] = "EXC001"
    name: ClassVar[str] = "exception-discipline"
    severity: ClassVar[str] = "error"
    description: ClassVar[str] = (
        "public surfaces (cli.py, pipeline/*) may only raise ReproError "
        "subclasses; bare/broad except clauses need a `# noqa: BLE001` "
        "or `# repro: noqa[EXC001]` justification anywhere"
    )

    def __init__(self) -> None:
        self._error_names = known_error_names()

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        public = any(fragment in ctx.relpath for fragment in _PUBLIC_SURFACES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise) and public:
                finding = self._check_raise(ctx, node)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.ExceptHandler):
                finding = self._check_handler(ctx, node)
                if finding is not None:
                    yield finding

    # -- raise sites ------------------------------------------------------

    def _raised_name(self, ctx: FileContext, node: ast.Raise) -> str | None:
        exc = node.exc
        if exc is None:  # bare re-raise
            return None
        if isinstance(exc, ast.Call):
            exc = exc.func
        resolved = ctx.imports.resolve(exc)
        if resolved is not None:
            if resolved.startswith("repro.errors."):
                return None  # imported from the sanctioned hierarchy
            return resolved.rsplit(".", 1)[-1]
        if isinstance(exc, ast.Name):
            return exc.id
        return None  # dynamic expression; out of scope

    def _check_raise(self, ctx: FileContext, node: ast.Raise) -> Violation | None:
        name = self._raised_name(ctx, node)
        if name is None:
            return None
        if name in self._error_names or name in _CONTROL_FLOW:
            return None
        if not name[:1].isupper():
            return None  # a variable holding a caught exception
        return self.violation(
            ctx,
            node,
            f"public surface raises {name}; raise a ReproError subclass "
            "from repro.errors so the CLI contract (exit code 2) holds",
        )

    # -- except handlers --------------------------------------------------

    def _is_broad(self, ctx: FileContext, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for t in types:
            name = None
            resolved = ctx.imports.resolve(t)
            if resolved is not None:
                name = resolved.rsplit(".", 1)[-1]
            elif isinstance(t, ast.Name):
                name = t.id
            if name in ("Exception", "BaseException"):
                return True
        return False

    def _check_handler(
        self, ctx: FileContext, handler: ast.ExceptHandler
    ) -> Violation | None:
        if not self._is_broad(ctx, handler):
            return None
        if ctx.has_blanket_noqa(handler.lineno):
            return None
        return self.violation(
            ctx,
            handler,
            "bare/broad except swallows everything, including the "
            "determinism bugs this analyser exists to catch; narrow it "
            "or justify with `# noqa: BLE001 - why`",
        )
