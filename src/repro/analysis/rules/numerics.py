"""NUM001 / NUM002 — numerical-stability lints.

NUM001: matrix inversion and log-determinants must go through the
guarded helpers in :mod:`repro.core.linalg`. A bare ``np.linalg.inv``
on a scatter matrix assembled from near-duplicate gel vectors raises
``LinAlgError`` mid-sweep or returns ``inf`` that poisons every
statistic downstream — exactly the failure class the guarded helpers
absorb (ridge-regularised retry, pseudo-inverse last resort).

NUM002: the paper's −log x concentration transform means ``np.log`` on
an unclamped value turns a single zero concentration into ``-inf`` and
a negative one into ``nan``. Outside :mod:`repro.units` (which owns the
canonical clamped transform), every ``log`` argument must be visibly
guarded: a constant, a clamp (``np.maximum``/``np.clip``/``abs``), an
ε-shift (``x + 1e-12``), or an enclosing ``np.where`` mask.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.core import FileContext, Rule, Violation

_BANNED_LINALG = {
    "numpy.linalg.inv": "guarded_inv",
    "numpy.linalg.slogdet": "guarded_slogdet / pd_logdet",
    "numpy.linalg.pinv": "guarded_inv",
    "scipy.linalg.inv": "guarded_inv",
}

_LOG_CALLS = {
    "numpy.log",
    "numpy.log2",
    "numpy.log10",
    "math.log",
    "math.log2",
    "math.log10",
}

#: Calls whose result is safe to take a log of (clamps and positives).
_SAFE_WRAPPERS = {
    "numpy.maximum",
    "numpy.clip",
    "numpy.abs",
    "numpy.absolute",
    "numpy.exp",
    "numpy.log1p",
}
_SAFE_BUILTINS = {"abs", "max", "len"}

#: Attribute constants that count as positive literals.
_CONST_ATTRS = {"numpy.pi", "numpy.e", "numpy.euler_gamma", "math.pi", "math.e", "math.tau"}

#: An enclosing call to one of these means the log is mask-guarded.
_MASKING_CALLS = {"numpy.where", "numpy.errstate"}


class GuardedLinalgRule(Rule):
    code: ClassVar[str] = "NUM001"
    name: ClassVar[str] = "guarded-linalg"
    severity: ClassVar[str] = "error"
    description: ClassVar[str] = (
        "no bare np.linalg.inv/slogdet/pinv outside repro/core/linalg.py; "
        "use the guarded helpers (guarded_inv, guarded_slogdet, pd_logdet, "
        "chol_inv_logdet)"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = ("repro/core/linalg.py",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target in _BANNED_LINALG:
                yield self.violation(
                    ctx,
                    node,
                    f"bare {target}; use repro.core.linalg."
                    f"{_BANNED_LINALG[target]} (ridge/pinv fallback off the "
                    "PD cone, bit-identical fast path)",
                )


class LogClampRule(Rule):
    code: ClassVar[str] = "NUM002"
    name: ClassVar[str] = "log-clamp"
    severity: ClassVar[str] = "warning"
    description: ClassVar[str] = (
        "np.log/math.log on a value that is not visibly clamped "
        "(np.maximum / np.clip / abs / +eps / np.where mask) outside "
        "repro/units/; a zero concentration becomes -inf, a negative "
        "one nan"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return "repro/units/" not in ctx.relpath

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target not in _LOG_CALLS:
                continue
            if not node.args or len(node.args) > 2:
                continue
            arg = node.args[0]
            if self._is_safe(ctx, arg) or self._mask_guarded(ctx, node):
                continue
            yield self.violation(
                ctx,
                node,
                f"{target} on a potentially unclamped value; clamp the "
                "argument (np.maximum(x, eps)), mask with np.where, or "
                "justify with `# repro: noqa[NUM002] - why`",
            )

    # -- safety analysis --------------------------------------------------

    def _is_positive_const(self, ctx: FileContext, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) and node.value > 0
        resolved = ctx.imports.resolve(node)
        return resolved in _CONST_ATTRS

    def _is_safe(self, ctx: FileContext, node: ast.AST) -> bool:
        if self._is_positive_const(ctx, node):
            return True
        if isinstance(node, ast.UnaryOp):
            return self._is_safe(ctx, node.operand)
        if isinstance(node, ast.BinOp):
            # ε-shift: `x + tiny` / `tiny + x` guards against zero (the
            # dominant failure in count/probability space).
            if isinstance(node.op, ast.Add) and (
                self._is_positive_const(ctx, node.left)
                or self._is_positive_const(ctx, node.right)
            ):
                return True
            # pure-constant arithmetic, e.g. np.log(2.0 * np.pi)
            return self._is_safe(ctx, node.left) and self._is_safe(ctx, node.right)
        if isinstance(node, ast.Call):
            target = ctx.imports.resolve(node.func)
            if target in _SAFE_WRAPPERS:
                return True
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _SAFE_BUILTINS
                and node.func.id not in ctx.imports.aliases
            ):
                return True
        return False

    def _mask_guarded(self, ctx: FileContext, node: ast.Call) -> bool:
        """True when an enclosing call is ``np.where(cond, log(x), …)``."""
        current: ast.AST = node
        parents = ctx.parents
        while current in parents:
            current = parents[current]
            if isinstance(current, ast.Call):
                if ctx.imports.resolve(current.func) in _MASKING_CALLS:
                    return True
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return False
