"""PAR001 — tasks handed to :mod:`repro.parallel` must be well-formed.

``run_tasks`` pickles the task function for the process backend and
hands every task a pre-spawned child generator. Both properties are
easy to break silently: a lambda or nested closure pickles on the
thread backend and then explodes (or worse, falls back to serial and
quietly loses the speedup) the first time ``--backend process`` is
used; a task without an ``rng`` parameter is a task that is about to
reach for global randomness. This rule checks call sites statically:
the function argument must be a module-level ``def`` (in the same file
or imported) whose signature accepts an explicit ``rng`` argument.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.core import FileContext, Rule, Violation

#: Canonical names of the submission entry points.
_SUBMIT_TARGETS = {
    "repro.parallel.run_tasks",
    "repro.parallel.executor.run_tasks",
}

_PARTIAL_TARGETS = {"functools.partial"}


def _module_level_defs(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _nested_def_names(ctx: FileContext) -> set[str]:
    toplevel = {id(n) for n in ctx.tree.body}
    return {
        node.name
        for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and id(node) not in toplevel
    }


def _param_names(fn: ast.FunctionDef) -> list[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


class ParallelTaskRule(Rule):
    code: ClassVar[str] = "PAR001"
    name: ClassVar[str] = "parallel-task-shape"
    severity: ClassVar[str] = "error"
    description: ClassVar[str] = (
        "functions submitted to repro.parallel.run_tasks must be "
        "module-level (picklable for the process backend) and accept an "
        "explicit rng argument"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        defs = _module_level_defs(ctx.tree)
        nested = _nested_def_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.imports.resolve(node.func) not in _SUBMIT_TARGETS:
                # run_tasks defined in this very module (executor.py)
                if not (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "run_tasks"
                    and "run_tasks" in defs
                ):
                    continue
            fn_arg = self._task_argument(node)
            if fn_arg is None:
                continue
            yield from self._check_task(ctx, node, fn_arg, defs, nested)

    def _task_argument(self, call: ast.Call) -> ast.AST | None:
        if call.args:
            return call.args[0]
        for kw in call.keywords:
            if kw.arg == "fn":
                return kw.value
        return None

    def _check_task(
        self,
        ctx: FileContext,
        call: ast.Call,
        fn_arg: ast.AST,
        defs: dict[str, ast.FunctionDef],
        nested: set[str],
    ) -> Iterator[Violation]:
        if isinstance(fn_arg, ast.Lambda):
            yield self.violation(
                ctx,
                call,
                "lambda submitted to run_tasks is unpicklable on the "
                "process backend; use a module-level def with an rng "
                "parameter",
            )
            return
        # unwrap functools.partial(fn, ...) one level
        if isinstance(fn_arg, ast.Call) and (
            ctx.imports.resolve(fn_arg.func) in _PARTIAL_TARGETS
        ):
            if fn_arg.args:
                yield from self._check_task(ctx, call, fn_arg.args[0], defs, nested)
            return
        if not isinstance(fn_arg, ast.Name):
            return  # attribute/dynamic: out of static reach
        name = fn_arg.id
        if name in nested and name not in defs:
            yield self.violation(
                ctx,
                call,
                f"task {name!r} is a nested function; the process backend "
                "cannot pickle it — hoist it to module level",
            )
            return
        fn = defs.get(name)
        if fn is None:
            return  # imported name: imports are module-level by construction
        if "rng" not in _param_names(fn):
            yield self.violation(
                ctx,
                call,
                f"task {name!r} does not accept an explicit `rng` "
                "argument; run_tasks passes each task a pre-spawned "
                "Generator and the task must use it",
            )
