"""OBS001: observability-name registry.

Span, event and metric names are stringly-typed: a typo'd
``registry.counter("cache.hti")`` records into a counter nobody reads
and no dashboard graphs, silently. This rule resolves every string
literal passed to ``trace.span(...)``, ``trace.event(...)`` and
``registry.counter|gauge|histogram(...)`` against the registry module
:mod:`repro.obs.names` and flags unknown names.

Dynamic names (f-strings, variables — e.g. per-stage spans named after
``stage.name``) are skipped: the registry covers them by hand, and the
scanner cannot evaluate them.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.core import FileContext, Rule, Violation
from repro.analysis.graph import is_product_path

_TRACE_CALLS = {
    "repro.obs.trace.span": "span",
    "repro.obs.trace.event": "event",
    "repro.obs.span": "span",
    "repro.obs.event": "event",
}

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


def registered_names() -> dict[str, frozenset[str]]:
    """The live registry; empty when :mod:`repro.obs.names` is absent
    (so the rule degrades to a no-op rather than erroring)."""
    try:
        from repro.obs import names
    except ImportError:  # pragma: no cover - names.py ships with repro
        return {}
    return names.all_names()


def scan_names(ctx: FileContext) -> Iterator[tuple[str, str, ast.Call]]:
    """Yield ``(kind, name, call)`` for every literal observability name
    in one file — shared by OBS001 and ``--dump-obs-names``."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _classify(ctx, node)
        if kind is None or not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield kind, first.value, node


def _classify(ctx: FileContext, call: ast.Call) -> str | None:
    resolved = ctx.imports.resolve(call.func)
    if resolved is not None:
        if resolved in _TRACE_CALLS:
            return _TRACE_CALLS[resolved]
        head, _, tail = resolved.rpartition(".")
        if tail in _METRIC_METHODS and head.endswith(("metrics.registry", "obs.registry")):
            return "metric"
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in _METRIC_METHODS and _mentions_registry(func.value):
        return "metric"
    if func.attr in ("span", "event") and _is_trace_receiver(func.value):
        return "span" if func.attr == "span" else "event"
    return None


def _mentions_registry(expr: ast.expr) -> bool:
    while isinstance(expr, ast.Attribute):
        if expr.attr == "registry":
            return True
        expr = expr.value
    return isinstance(expr, ast.Name) and expr.id == "registry"


def _is_trace_receiver(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and "trace" in expr.id


class ObservabilityNameRule(Rule):
    code: ClassVar[str] = "OBS001"
    name: ClassVar[str] = "observability-name-registry"
    severity: ClassVar[str] = "error"
    description: ClassVar[str] = (
        "Literal span/event/metric names must be declared in "
        "repro.obs.names — a typo'd name records into an instrument "
        "nobody reads."
    )
    #: the registry itself and the tracer/metrics internals define
    #: names, they don't emit them.
    exempt_suffixes: ClassVar[tuple[str, ...]] = (
        "repro/obs/names.py",
        "repro/obs/trace.py",
        "repro/obs/metrics.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not is_product_path(ctx.relpath):
            return  # tests mint throwaway instrument names freely
        registry = registered_names()
        if not registry:
            return
        for kind, name, call in scan_names(ctx):
            known = registry.get(kind, frozenset())
            if name in known:
                continue
            hint = _closest(name, known)
            suffix = f" (did you mean {hint!r}?)" if hint else ""
            yield self.violation(
                ctx,
                call,
                f"unregistered {kind} name {name!r}{suffix}: declare it "
                "in repro.obs.names or fix the typo",
            )


def _closest(name: str, known: frozenset[str]) -> str | None:
    """Cheap typo hint: smallest prefix-distance match."""
    best: tuple[int, str] | None = None
    for candidate in known:
        common = len(_common_prefix(name, candidate))
        distance = max(len(name), len(candidate)) - common
        if common >= 3 and (best is None or distance < best[0]):
            best = (distance, candidate)
    return best[1] if best is not None and best[0] <= 4 else None


def _common_prefix(a: str, b: str) -> str:
    i = 0
    while i < min(len(a), len(b)) and a[i] == b[i]:
        i += 1
    return a[:i]
