"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit codes: 0 — clean (or every finding baselined); 1 — new findings;
2 — usage or configuration error (missing paths, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.rules import rules_by_code
from repro.analysis.runner import (
    analyze_paths,
    iter_rule_docs,
    render_json,
    render_text,
)

#: Scanned when no paths are given and they exist under the cwd.
DEFAULT_PATHS = ("src/repro", "tests", "benchmarks")


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the analyser's arguments (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=f"files/directories to analyse (default: {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "accepted-debt file; defaults to ./"
            f"{DEFAULT_BASELINE_NAME} when it exists"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report and fail on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "report-only mode: write the current findings to the baseline "
            "file and exit 0"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings covered by the baseline (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    return configure_parser(
        argparse.ArgumentParser(
            prog="repro.analysis",
            description=(
                "Project-specific static analysis: RNG discipline, guarded "
                "linear algebra, log clamping, exception discipline, "
                "parallel task shape."
            ),
        )
    )


def _resolve_paths(args: argparse.Namespace) -> list[Path]:
    if args.paths:
        return [Path(p) for p in args.paths]
    defaults = [Path(p) for p in DEFAULT_PATHS if Path(p).exists()]
    if not defaults:
        raise FileNotFoundError(
            "no paths given and none of the defaults "
            f"({', '.join(DEFAULT_PATHS)}) exist under the current directory"
        )
    return defaults


def _resolve_baseline(args: argparse.Namespace) -> tuple[Baseline | None, Path]:
    """(baseline or None, path to write to for --write-baseline)."""
    explicit = args.baseline is not None
    path = Path(args.baseline) if explicit else Path(DEFAULT_BASELINE_NAME)
    if args.no_baseline:
        return None, path
    if path.exists():
        return Baseline.load(path), path
    if explicit and not args.write_baseline:
        raise FileNotFoundError(f"baseline file not found: {path}")
    return None, path


def run_from_args(args: argparse.Namespace) -> int:
    """Execute an analyser invocation from parsed arguments."""
    if args.list_rules:
        for line in iter_rule_docs():
            print(line)
        return 0
    try:
        rules = (
            rules_by_code(tuple(args.select.split(",")))
            if args.select
            else None
        )
        paths = _resolve_paths(args)
        baseline, baseline_path = _resolve_baseline(args)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    try:
        result = analyze_paths(paths, rules=rules, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_violations(result.violations).save(baseline_path)
        print(
            f"wrote {len(result.violations)} finding(s) to {baseline_path}; "
            "they are now accepted debt"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_baselined=args.show_baselined))
    return 1 if result.failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return run_from_args(args)
