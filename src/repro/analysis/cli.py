"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit codes: 0 — clean (or every finding baselined); 1 — new findings
(or, under ``--check-ratchet``, a baseline that must shrink); 2 — usage
or configuration error (missing paths, unreadable baseline, a
``--write-baseline`` that would grow the ratchet without ``--triage``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    check_ratchet,
)
from repro.analysis.rules import rules_by_code
from repro.analysis.runner import (
    analyze_paths,
    iter_rule_docs,
    render_json,
    render_text,
)
from repro.analysis.sarif import render_sarif

#: Scanned when no paths are given and they exist under the cwd.
DEFAULT_PATHS = ("src/repro", "tests", "benchmarks")


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the analyser's arguments (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=f"files/directories to analyse (default: {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text); sarif emits SARIF 2.1.0",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "accepted-debt file; defaults to ./"
            f"{DEFAULT_BASELINE_NAME} when it exists"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report and fail on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "report-only mode: write the current findings to the baseline "
            "file and exit 0"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings covered by the baseline (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--check-ratchet",
        action="store_true",
        help=(
            "fail (exit 1) if the committed baseline must change: new "
            "findings outside it, or stale entries whose debt was paid"
        ),
    )
    parser.add_argument(
        "--triage",
        metavar="NOTE",
        default=None,
        help=(
            "justification required for a --write-baseline that grows "
            "the baseline; recorded in the file"
        ),
    )
    parser.add_argument(
        "--dump-obs-names",
        action="store_true",
        help=(
            "scan for literal span/event/metric names and print "
            "registry sets for repro.obs.names, then exit"
        ),
    )
    parser.add_argument(
        "--check-obs-names",
        action="store_true",
        help=(
            "fail (exit 1) if the literal span/event/metric names in "
            "the tree drift from the repro.obs.names registry (minus "
            "its declared dynamic names)"
        ),
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    return configure_parser(
        argparse.ArgumentParser(
            prog="repro.analysis",
            description=(
                "Project-specific static analysis: RNG discipline, guarded "
                "linear algebra, log clamping, exception discipline, "
                "parallel task shape, lock discipline, fingerprint purity, "
                "observability-name registry, error-envelope completeness."
            ),
        )
    )


def _resolve_paths(args: argparse.Namespace) -> list[Path]:
    if args.paths:
        return [Path(p) for p in args.paths]
    defaults = [Path(p) for p in DEFAULT_PATHS if Path(p).exists()]
    if not defaults:
        raise FileNotFoundError(
            "no paths given and none of the defaults "
            f"({', '.join(DEFAULT_PATHS)}) exist under the current directory"
        )
    return defaults


def _resolve_baseline(args: argparse.Namespace) -> tuple[Baseline | None, Path]:
    """(baseline or None, path to write to for --write-baseline)."""
    explicit = args.baseline is not None
    path = Path(args.baseline) if explicit else Path(DEFAULT_BASELINE_NAME)
    if args.no_baseline:
        return None, path
    if path.exists():
        return Baseline.load(path), path
    if explicit and not args.write_baseline:
        raise FileNotFoundError(f"baseline file not found: {path}")
    return None, path


def _scan_obs_names(paths: Sequence[Path]) -> dict[str, set[str]]:
    """Literal span/event/metric names found under ``paths``."""
    from repro.analysis.core import FileContext
    from repro.analysis.rules.obs import scan_names
    from repro.analysis.runner import discover

    found: dict[str, set[str]] = {"span": set(), "event": set(), "metric": set()}
    for path in discover(paths):
        try:
            ctx = FileContext.parse(path)
        except SyntaxError:
            continue
        for kind, name, _ in scan_names(ctx):
            found[kind].add(name)
    return found


def _dump_obs_names(paths: Sequence[Path]) -> int:
    """Scan ``paths`` and print ready-to-paste registry sets."""
    found = _scan_obs_names(paths)
    for kind, label in (("span", "SPANS"), ("event", "EVENTS"), ("metric", "METRICS")):
        print(f"{label}: frozenset[str] = frozenset(")
        print("    {")
        for name in sorted(found[kind]):
            print(f"        {name!r},")
        print("    }")
        print(")")
    return 0


def _check_obs_names(paths: Sequence[Path]) -> int:
    """Fail when the scanned names drift from the committed registry.

    The registry's dynamically-emitted names (``DYNAMIC_*`` in
    :mod:`repro.obs.names`) are subtracted before comparing — the
    scanner cannot see them by construction.
    """
    from repro.obs.names import scanner_visible_names

    found = _scan_obs_names(paths)
    expected = scanner_visible_names()
    problems: list[str] = []
    for kind in ("span", "event", "metric"):
        unregistered = found[kind] - expected[kind]
        vanished = expected[kind] - found[kind]
        for name in sorted(unregistered):
            problems.append(
                f"{kind} {name!r} is emitted but not registered in "
                "repro/obs/names.py (add it; if the call site builds "
                "the name dynamically, also add it to the DYNAMIC_* set)"
            )
        for name in sorted(vanished):
            problems.append(
                f"{kind} {name!r} is registered in repro/obs/names.py "
                "but no literal call site emits it (remove it, or move "
                "it to the DYNAMIC_* set if it became dynamic)"
            )
    if problems:
        print(
            f"obs-name registry drift ({len(problems)} problem(s)):",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        print(
            "regenerate with: python -m repro.analysis --dump-obs-names "
            "src/repro",
            file=sys.stderr,
        )
        return 1
    counts = ", ".join(
        f"{len(found[kind])} {kind}s" for kind in ("span", "event", "metric")
    )
    print(f"obs-name registry in sync ({counts})")
    return 0


def run_from_args(args: argparse.Namespace) -> int:
    """Execute an analyser invocation from parsed arguments."""
    if args.list_rules:
        for line in iter_rule_docs():
            print(line)
        return 0
    try:
        rules = (
            rules_by_code(tuple(args.select.split(",")))
            if args.select
            else None
        )
        paths = _resolve_paths(args)
        baseline, baseline_path = _resolve_baseline(args)
        if args.check_ratchet and baseline is None:
            raise FileNotFoundError(
                "--check-ratchet needs a committed baseline "
                f"(none at {baseline_path})"
            )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    if args.dump_obs_names:
        return _dump_obs_names(paths)

    if args.check_obs_names:
        return _check_obs_names(paths)

    try:
        result = analyze_paths(paths, rules=rules, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    if args.check_ratchet:
        assert baseline is not None  # guarded above
        report = check_ratchet(result.violations, baseline)
        for line in report.lines():
            print(line)
        return 0 if report.ok else 1

    if args.write_baseline:
        # The ratchet: regenerating a *larger* baseline is refused
        # unless the growth comes with a written triage note.
        previous = Baseline.load(baseline_path) if baseline_path.exists() else None
        if (
            previous is not None
            and len(result.violations) > len(previous.entries)
            and not args.triage
        ):
            print(
                "repro.analysis: baseline would grow from "
                f"{len(previous.entries)} to {len(result.violations)} "
                "entries; the baseline is a ratchet and may only shrink. "
                "Fix the new findings, or pass --triage 'reason' to "
                "accept them deliberately.",
                file=sys.stderr,
            )
            return 2
        Baseline.from_violations(result.violations, triage=args.triage).save(
            baseline_path
        )
        print(
            f"wrote {len(result.violations)} finding(s) to {baseline_path}; "
            "they are now accepted debt"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result, rules=rules))
    else:
        print(render_text(result, show_baselined=args.show_baselined))
    return 1 if result.failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return run_from_args(args)
