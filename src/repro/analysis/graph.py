"""Whole-program model for project-wide analysis rules.

:class:`ProjectContext` turns the per-file :class:`FileContext` pile
into three cross-file indices the data-flow rules plug into:

* a **module import graph** (which ``repro.*`` modules import which),
* a **per-function call graph** keyed by qualified name
  (``repro.serve.batch:MicroBatcher.submit``), with edges resolved
  through each file's :class:`~repro.analysis.core.ImportTable` and a
  class-hierarchy-style name-match fallback for ``expr.method()`` calls
  whose receiver type is unknown,
* a **class attribute-access index** recording, for every ``self.attr``
  read/write in every method, whether it happened under a
  ``with self._lock:`` block — the substrate for THR001's
  lock-discipline inference.

Resolution is deliberately conservative-but-syntactic: no type
inference. Unresolvable receivers fall back to matching every project
method of the same name (minus a stoplist of ubiquitous names), which
over-approximates reachability — fine for purity checks, where missing
an edge is worse than following a spurious one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.core import FileContext

#: Method names too generic for the name-match call fallback — wiring
#: every ``.get()``/``.items()`` into the call graph would connect half
#: the stdlib to everything.
COMMON_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "encode",
        "endswith",
        "extend",
        "format",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "max",
        "mean",
        "min",
        "open",
        "pop",
        "put",
        "read",
        "remove",
        "result",
        "set",
        "sort",
        "split",
        "startswith",
        "strip",
        "sum",
        "update",
        "values",
        "write",
    }
)

INIT_METHODS = frozenset({"__init__", "__post_init__"})

_THREAD_FACTORIES = frozenset(
    {"threading.Thread", "threading.Timer", "Thread", "Timer"}
)


def module_name_of(relpath: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/repro/serve/batch.py`` → ``repro.serve.batch``;
    ``src/repro/obs/__init__.py`` → ``repro.obs``.
    """
    path = relpath
    if path.endswith(".py"):
        path = path[: -len(".py")]
    parts = [p for p in path.split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def is_product_path(relpath: str) -> bool:
    """True for shipped product code (excludes tests/ and benchmarks/),
    where the project-wide rules apply."""
    top = relpath.split("/", 1)[0]
    return top not in ("tests", "benchmarks")


def iter_own_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested def/class bodies.

    Nested functions and classes are separate call-graph nodes; a
    hazard inside one must be attributed there, not to the enclosing
    function as well.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


def base_names(node: ast.ClassDef) -> tuple[str, ...]:
    """Textual base-class names, with subscripts unwrapped
    (``Stage[GelConfig]`` → ``Stage``)."""
    names: list[str] = []
    for base in node.bases:
        target: ast.AST = base
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            names.append(target.attr)
        elif isinstance(target, ast.Name):
            names.append(target.id)
    return tuple(names)


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.attr`` read or write inside a method body."""

    attr: str
    method: str
    node: ast.AST
    is_write: bool
    under_lock: bool


@dataclass
class FunctionInfo:
    """One function/method: a call-graph node."""

    qualname: str
    module: str
    ctx: FileContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    #: resolved edges to other project functions (qualnames).
    internal_calls: set[str] = field(default_factory=set)
    #: calls resolved to a dotted path *outside* the project, with the
    #: call node for precise reporting (``("time.time", <Call>)``).
    external_calls: list[tuple[str, ast.Call]] = field(default_factory=list)
    #: ``expr.method()`` calls whose receiver could not be resolved —
    #: candidates for the name-match fallback.
    unresolved_methods: set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """Attribute-access model of one class, for lock-discipline rules."""

    qualname: str
    module: str
    name: str
    ctx: FileContext
    node: ast.ClassDef
    bases: tuple[str, ...]
    #: attribute names that hold locks (``self._lock = threading.Lock()``
    #: or any ``with self.X:`` whose name mentions "lock").
    lock_attrs: set[str] = field(default_factory=set)
    #: the class starts threads (``threading.Thread(...)`` in a method).
    spawns_thread: bool = False
    accesses: list[AttrAccess] = field(default_factory=list)

    def writes(self) -> dict[str, list[AttrAccess]]:
        grouped: dict[str, list[AttrAccess]] = {}
        for access in self.accesses:
            if access.is_write:
                grouped.setdefault(access.attr, []).append(access)
        return grouped

    def accessing_methods(self, attr: str) -> set[str]:
        return {a.method for a in self.accesses if a.attr == attr}


class ProjectContext:
    """Cross-file indices over every parsed :class:`FileContext`."""

    def __init__(self, contexts: Iterable[FileContext]) -> None:
        self.contexts: dict[str, FileContext] = {
            ctx.relpath: ctx for ctx in contexts
        }
        #: dotted module name → its FileContext.
        self.modules: dict[str, FileContext] = {}
        #: ``module:Class.method`` / ``module:func`` → FunctionInfo.
        self.functions: dict[str, FunctionInfo] = {}
        #: ``module:Class`` → ClassInfo.
        self.classes: dict[str, ClassInfo] = {}
        #: bare method name → qualnames of every project method so named.
        self.methods_by_name: dict[str, set[str]] = {}
        #: module → modules it imports (project-internal edges only).
        self.import_graph: dict[str, set[str]] = {}
        for ctx in self.contexts.values():
            module = module_name_of(ctx.relpath)
            if module:
                self.modules[module] = ctx
        for module, ctx in self.modules.items():
            self._collect_module(module, ctx)
        self._build_import_graph()
        self._resolve_calls()

    # -- construction --------------------------------------------------

    def _collect_module(self, module: str, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scope = self._enclosing_scope(ctx, node)
            if scope is None:
                continue  # unreachable: every def has a scope chain
            names, class_name = scope
            qualname = f"{module}:{'.'.join([*names, node.name])}"
            info = FunctionInfo(
                qualname=qualname,
                module=module,
                ctx=ctx,
                node=node,
                class_name=class_name,
            )
            self.functions[qualname] = info
            if class_name is not None and not names[:-1]:
                self.methods_by_name.setdefault(node.name, set()).add(qualname)
            if names:  # nested def: parent keeps an edge into it
                parent_qual = f"{module}:{'.'.join(names)}"
                parent = self.functions.get(parent_qual)
                if parent is not None:
                    parent.internal_calls.add(qualname)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                self._collect_class(module, ctx, node)

    def _enclosing_scope(
        self, ctx: FileContext, node: ast.AST
    ) -> tuple[list[str], str | None] | None:
        """Names of enclosing defs/classes (outermost first) and the
        immediate owning class, if any."""
        names: list[str] = []
        class_name: str | None = None
        current = ctx.parents.get(node)
        immediate = True
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.append(current.name)
                immediate = False
            elif isinstance(current, ast.ClassDef):
                if immediate:
                    class_name = current.name
                names.append(current.name)
                immediate = False
            current = ctx.parents.get(current)
        names.reverse()
        return names, class_name

    def _collect_class(
        self, module: str, ctx: FileContext, node: ast.ClassDef
    ) -> None:
        info = ClassInfo(
            qualname=f"{module}:{node.name}",
            module=module,
            name=node.name,
            ctx=ctx,
            node=node,
            bases=base_names(node),
        )
        methods = [
            child
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for method in methods:
            self._scan_method(ctx, info, method)
        self.classes[info.qualname] = info

    def _scan_method(
        self,
        ctx: FileContext,
        info: ClassInfo,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self._scan_block(ctx, info, method.name, method.body, under_lock=False)

    def _scan_block(
        self,
        ctx: FileContext,
        info: ClassInfo,
        method: str,
        body: Iterable[ast.stmt],
        under_lock: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                locked = under_lock or any(
                    self._is_self_lock(info, item.context_expr)
                    for item in stmt.items
                )
                for item in stmt.items:
                    self._scan_expr(ctx, info, method, item.context_expr, under_lock)
                self._scan_block(ctx, info, method, stmt.body, locked)
                continue
            self._scan_stmt(ctx, info, method, stmt, under_lock)
            for block in self._inner_blocks(stmt):
                self._scan_block(ctx, info, method, block, under_lock)

    @staticmethod
    def _inner_blocks(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body

    def _scan_stmt(
        self,
        ctx: FileContext,
        info: ClassInfo,
        method: str,
        stmt: ast.stmt,
        under_lock: bool,
    ) -> None:
        targets: list[ast.expr] = []
        values: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets, values = list(stmt.targets), [stmt.value]
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
            if getattr(stmt, "value", None) is not None:
                values = [stmt.value]  # type: ignore[list-item]
            if isinstance(stmt, ast.AugAssign):
                # ``self.x += 1`` both reads and writes self.x.
                values.append(stmt.target)
        else:
            # Non-assignment statement: only the expression parts that
            # belong to *this* statement, not its nested blocks.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    values.append(child)
        for target in targets:
            self._record_target(info, method, target, under_lock)
            # Subscript/attribute chains inside targets also read.
            for sub in ast.walk(target):
                if sub is not target:
                    self._maybe_record(info, method, sub, under_lock, write=False)
        for value in values:
            self._scan_expr(ctx, info, method, value, under_lock)

    def _record_target(
        self, info: ClassInfo, method: str, target: ast.expr, under_lock: bool
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(info, method, elt, under_lock)
            return
        self._maybe_record(info, method, target, under_lock, write=True)
        if isinstance(target, ast.Subscript):
            # ``self.cache[k] = v`` mutates the object behind self.cache.
            self._maybe_record(info, method, target.value, under_lock, write=True)

    def _scan_expr(
        self,
        ctx: FileContext,
        info: ClassInfo,
        method: str,
        expr: ast.expr,
        under_lock: bool,
    ) -> None:
        for node in ast.walk(expr):
            self._maybe_record(info, method, node, under_lock, write=False)
            if isinstance(node, ast.Call):
                resolved = ctx.imports.resolve(node.func)
                func_name = (
                    node.func.id if isinstance(node.func, ast.Name) else resolved
                )
                if resolved in _THREAD_FACTORIES or func_name in _THREAD_FACTORIES:
                    info.spawns_thread = True

    @staticmethod
    def _maybe_record(
        info: ClassInfo,
        method: str,
        node: ast.AST,
        under_lock: bool,
        write: bool,
    ) -> None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            info.accesses.append(
                AttrAccess(
                    attr=node.attr,
                    method=method,
                    node=node,
                    is_write=write,
                    under_lock=under_lock,
                )
            )

    @staticmethod
    def _is_self_lock(info: ClassInfo, expr: ast.expr) -> bool:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and "lock" in expr.attr.lower()
        ):
            info.lock_attrs.add(expr.attr)
            return True
        return False

    def _build_import_graph(self) -> None:
        for module, ctx in self.modules.items():
            edges = self.import_graph.setdefault(module, set())
            for dotted in ctx.imports.aliases.values():
                target = self._module_prefix(dotted)
                if target is not None and target != module:
                    edges.add(target)
        # ``self._lock = threading.Lock()`` assignments mark lock attrs
        # even when the class never uses ``with self._lock:`` itself.
        for cls in self.classes.values():
            for stmt in ast.walk(cls.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                value = stmt.value
                if not isinstance(value, ast.Call):
                    continue
                resolved = cls.ctx.imports.resolve(value.func)
                if resolved not in ("threading.Lock", "threading.RLock"):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.lock_attrs.add(target.attr)

    def _module_prefix(self, dotted: str) -> str | None:
        """Longest project-module prefix of a dotted path, or None."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                return prefix
        return None

    def _resolve_calls(self) -> None:
        for info in self.functions.values():
            for call in self._own_calls(info.node):
                self._resolve_call(info, call)

    @staticmethod
    def _is_super_call(expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "super"
        )

    @staticmethod
    def _own_calls(node: ast.AST) -> Iterator[ast.Call]:
        for child in iter_own_nodes(node):
            if isinstance(child, ast.Call):
                yield child

    def _resolve_call(self, info: FunctionInfo, call: ast.Call) -> None:
        func = call.func
        # self.method() → a method on the same class (or an inherited
        # one: fall through to the name-match fallback).
        # super().method() resolves the same way but never falls back:
        # fanning super().__init__() out to every project __init__
        # would wire unrelated subsystems together.
        if (
            isinstance(func, ast.Attribute)
            and info.class_name is not None
            and (
                (isinstance(func.value, ast.Name) and func.value.id == "self")
                or self._is_super_call(func.value)
            )
        ):
            own = f"{info.module}:{info.class_name}.{func.attr}"
            if own in self.functions:
                info.internal_calls.add(own)
            elif not self._is_super_call(func.value):
                info.unresolved_methods.add(func.attr)
            return
        resolved = info.ctx.imports.resolve(func)
        if resolved is None and isinstance(func, ast.Name):
            # Bare name: module-level function or class in this module.
            local_fn = f"{info.module}:{func.id}"
            if local_fn in self.functions:
                info.internal_calls.add(local_fn)
                return
            if local_fn in self.classes:
                ctor = f"{local_fn}.__init__"
                if ctor in self.functions:
                    info.internal_calls.add(ctor)
                return
        if resolved is None:
            if isinstance(func, ast.Attribute):
                info.unresolved_methods.add(func.attr)
            return
        targets = self._project_targets(resolved)
        if targets is None:
            info.external_calls.append((resolved, call))
        else:
            info.internal_calls.update(targets)

    def _project_targets(self, dotted: str) -> set[str] | None:
        """Qualnames a resolved dotted call maps onto, or None when the
        path lies outside the project entirely."""
        prefix = self._module_prefix(dotted)
        if prefix is None:
            return None
        rest = dotted[len(prefix) :].lstrip(".").split(".") if dotted != prefix else []
        rest = [p for p in rest if p]
        if not rest:
            return set()  # a module object used as a callable: ignore
        qual = f"{prefix}:{'.'.join(rest)}"
        if qual in self.functions:
            return {qual}
        if len(rest) == 1 and qual in self.classes:
            ctor = f"{qual}.__init__"
            return {ctor} if ctor in self.functions else set()
        # Project-internal path we cannot pin down (re-export through a
        # package __init__, attribute constant): treat as opaque.
        return set()

    # -- queries -------------------------------------------------------

    def context_for(self, relpath: str) -> FileContext | None:
        return self.contexts.get(relpath)

    def classes_with_base(self, base: str) -> Iterator[ClassInfo]:
        for cls in self.classes.values():
            if base in cls.bases:
                yield cls

    def reachable_from(self, roots: Iterable[str]) -> dict[str, str]:
        """BFS over the call graph: reached qualname → the root that
        first reached it. Unresolved ``expr.method()`` calls fan out to
        every project method of that name (CHA-style), minus
        :data:`COMMON_METHOD_NAMES`."""
        root_of: dict[str, str] = {}
        queue: list[tuple[str, str]] = [
            (root, root) for root in roots if root in self.functions
        ]
        while queue:
            qualname, root = queue.pop()
            if qualname in root_of:
                continue
            root_of[qualname] = root
            info = self.functions[qualname]
            targets = set(info.internal_calls)
            for name in info.unresolved_methods:
                if name in COMMON_METHOD_NAMES or (
                    name.startswith("__") and name.endswith("__")
                ):
                    continue
                targets.update(self.methods_by_name.get(name, ()))
            for target in targets:
                if target in self.functions and target not in root_of:
                    queue.append((target, root))
        return root_of
