"""``python -m repro.analysis`` — run the project static analyser."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
