"""File discovery and rule execution for the repro analyser."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, fingerprint_all
from repro.analysis.core import FileContext, Rule, Violation, relative_posix
from repro.analysis.graph import ProjectContext
from repro.analysis.rules import default_rules

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "node_modules", ".mypy_cache"}


def discover(paths: Sequence[Path | str]) -> list[Path]:
    """Python files under ``paths`` (files kept as-is), sorted, deduped."""
    found: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                found.setdefault(path.resolve(), None)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            found.setdefault(candidate.resolve(), None)
    return sorted(found)


@dataclass
class RunResult:
    """Everything one analyser invocation produced."""

    violations: list[Violation] = field(default_factory=list)
    new_violations: list[Violation] = field(default_factory=list)
    checked_files: int = 0
    parse_failures: list[Violation] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.new_violations) or bool(self.parse_failures)

    def summary(self) -> str:
        total = len(self.violations) + len(self.parse_failures)
        baselined = len(self.violations) - len(self.new_violations)
        bits = [
            f"{self.checked_files} file(s) checked",
            f"{total} finding(s)",
        ]
        if baselined:
            bits.append(f"{baselined} baselined")
        bits.append(f"{len(self.new_violations) + len(self.parse_failures)} blocking")
        return ", ".join(bits)


def analyze_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule] | None = None,
    root: Path | None = None,
    baseline: Baseline | None = None,
) -> RunResult:
    """Run ``rules`` over every Python file under ``paths``.

    Suppressions (``# repro: noqa[...]``) are applied per rule;
    ``baseline`` then decides which of the surviving violations are
    *new* (blocking) versus accepted debt. Per-file rules run file by
    file; project-wide rules run once afterwards over the
    :class:`~repro.analysis.graph.ProjectContext` built from every file
    that parsed.
    """
    active = tuple(rules) if rules is not None else default_rules()
    per_file = [rule for rule in active if not rule.project_wide]
    project_rules = [rule for rule in active if rule.project_wide]
    result = RunResult()
    contexts: list[FileContext] = []
    for path in discover(paths):
        result.checked_files += 1
        try:
            ctx = FileContext.parse(path, root=root)
        except SyntaxError as exc:
            result.parse_failures.append(
                Violation(
                    rule="SYNTAX",
                    path=relative_posix(path, root),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"cannot parse: {exc.msg}",
                    severity="error",
                )
            )
            continue
        contexts.append(ctx)
        for rule in per_file:
            result.violations.extend(rule.run(ctx))
    if project_rules:
        project = ProjectContext(contexts)
        for rule in project_rules:
            result.violations.extend(rule.run_project(project))
    result.violations.sort(key=Violation.sort_key)
    chosen = baseline if baseline is not None else Baseline.empty()
    result.new_violations = chosen.filter_new(result.violations)
    return result


def render_text(result: RunResult, show_baselined: bool = False) -> str:
    """Human-readable report; blocking findings first."""
    lines: list[str] = []
    blocking = result.parse_failures + result.new_violations
    for v in blocking:
        lines.append(v.format())
        if v.snippet:
            lines.append(f"    {v.snippet}")
    if show_baselined:
        new_set = {id(v) for v in result.new_violations}
        for v in result.violations:
            if id(v) not in new_set:
                lines.append(f"{v.format()} (baselined)")
    lines.append(result.summary())
    return "\n".join(lines)


def render_json(result: RunResult) -> str:
    """Machine-readable report (one JSON document)."""
    ordered = sorted(result.violations, key=Violation.sort_key)
    fps = fingerprint_all(ordered)
    new_ids = {id(v) for v in result.new_violations}
    payload = {
        "checked_files": result.checked_files,
        "summary": result.summary(),
        "failed": result.failed,
        "parse_failures": [v.to_json() for v in result.parse_failures],
        "violations": [
            {**v.to_json(), "fingerprint": fp, "new": id(v) in new_ids}
            for v, fp in zip(ordered, fps)
        ],
    }
    return json.dumps(payload, indent=2)


def iter_rule_docs(rules: Iterable[Rule] | None = None) -> list[str]:
    """``CODE [severity] description`` lines for ``--list-rules``."""
    active = tuple(rules) if rules is not None else default_rules()
    return [
        f"{rule.code} ({rule.name}) [{rule.severity}]: {rule.description}"
        for rule in active
    ]
