"""SARIF 2.1.0 export for GitHub code-scanning annotations.

One run object per invocation: the tool section lists every registered
rule (plus the ``SYNTAX`` pseudo-rule for parse failures), each result
carries the analyser's stable fingerprint in ``partialFingerprints``
(so code scanning tracks findings across line drift the same way the
committed baseline does) and ``baselineState`` distinguishes accepted
debt (``unchanged``) from blocking findings (``new``).
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.baseline import fingerprint_all
from repro.analysis.core import Rule, Violation
from repro.analysis.rules import default_rules
from repro.analysis.runner import RunResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: ``partialFingerprints`` key; versioned so a future fingerprint
#: scheme can coexist during migration.
FINGERPRINT_KEY = "reproAnalysis/v1"

_DOC_URI = "docs/static-analysis.md"


def _rule_descriptor(rule: Rule) -> dict[str, object]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "helpUri": _DOC_URI,
        "defaultConfiguration": {"level": rule.severity},
    }


def _syntax_descriptor() -> dict[str, object]:
    return {
        "id": "SYNTAX",
        "name": "parse-failure",
        "shortDescription": {"text": "The file could not be parsed as Python."},
        "helpUri": _DOC_URI,
        "defaultConfiguration": {"level": "error"},
    }


def _result(
    violation: Violation,
    fingerprint: str | None = None,
    baseline_state: str | None = None,
) -> dict[str, object]:
    region: dict[str, object] = {
        "startLine": violation.line,
        "startColumn": violation.col,
    }
    if violation.snippet:
        region["snippet"] = {"text": violation.snippet}
    record: dict[str, object] = {
        "ruleId": violation.rule,
        "level": violation.severity,
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": region,
                }
            }
        ],
    }
    if fingerprint is not None:
        record["partialFingerprints"] = {FINGERPRINT_KEY: fingerprint}
    if baseline_state is not None:
        record["baselineState"] = baseline_state
    return record


def render_sarif(
    result: RunResult, rules: Sequence[Rule] | None = None
) -> str:
    """The full report as one SARIF 2.1.0 JSON document."""
    from repro import __version__

    active = tuple(rules) if rules is not None else default_rules()
    ordered = sorted(result.violations, key=Violation.sort_key)
    fps = fingerprint_all(ordered)
    new_ids = {id(v) for v in result.new_violations}
    results = [
        _result(
            violation,
            fingerprint=fp,
            baseline_state="new" if id(violation) in new_ids else "unchanged",
        )
        for violation, fp in zip(ordered, fps)
    ]
    results.extend(
        _result(failure, baseline_state="new")
        for failure in result.parse_failures
    )
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": _DOC_URI,
                        "version": __version__,
                        "rules": sorted(
                            [
                                *(_rule_descriptor(rule) for rule in active),
                                _syntax_descriptor(),
                            ],
                            key=lambda descriptor: descriptor["id"],
                        ),
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
