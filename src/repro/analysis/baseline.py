"""Committed-baseline handling: existing debt fails only when it grows.

A baseline entry fingerprints a violation by *what* the offending line
says, not *where* it currently sits — ``sha256(rule | path |
stripped-line-text | duplicate-index)`` — so unrelated edits that shift
line numbers do not invalidate the baseline, while editing the flagged
line itself (or adding a second identical offence) surfaces as new.

The baseline is also a **ratchet**: it may only shrink. Regenerating a
*larger* baseline requires an explicit ``--triage`` note (recorded in
the file), and :func:`check_ratchet` — ``repro lint --check-ratchet``
in CI — fails on new findings *and* on stale entries whose debt was
paid but never removed, forcing the shrink to be committed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import Violation

BASELINE_VERSION = 1

#: Default committed baseline, looked up relative to the working dir.
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


def fingerprint(violation: Violation, duplicate_index: int = 0) -> str:
    """Stable identity of a violation across line-number drift."""
    payload = "|".join(
        (
            violation.rule,
            violation.path,
            violation.snippet,
            str(duplicate_index),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprint_all(violations: Sequence[Violation]) -> list[str]:
    """Fingerprints for a batch, disambiguating identical lines."""
    seen: dict[tuple[str, str, str], int] = {}
    out: list[str] = []
    for v in sorted(violations, key=Violation.sort_key):
        key = (v.rule, v.path, v.snippet)
        index = seen.get(key, 0)
        seen[key] = index + 1
        out.append(fingerprint(v, index))
    return out


@dataclass(frozen=True)
class Baseline:
    """An accepted-debt set loaded from (or destined for) JSON."""

    fingerprints: frozenset[str]
    entries: tuple[dict[str, object], ...] = ()
    #: justification recorded when a regeneration *grew* the baseline.
    triage: str | None = None

    def __contains__(self, fp: str) -> bool:
        return fp in self.fingerprints

    def filter_new(
        self, violations: Sequence[Violation]
    ) -> list[Violation]:
        """Violations whose fingerprint is *not* baselined, sorted."""
        ordered = sorted(violations, key=Violation.sort_key)
        fps = fingerprint_all(ordered)
        return [v for v, fp in zip(ordered, fps) if fp not in self.fingerprints]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(fingerprints=frozenset())

    @classmethod
    def from_violations(
        cls, violations: Sequence[Violation], triage: str | None = None
    ) -> "Baseline":
        ordered = sorted(violations, key=Violation.sort_key)
        fps = fingerprint_all(ordered)
        entries = tuple(
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "snippet": v.snippet,
                "fingerprint": fp,
            }
            for v, fp in zip(ordered, fps)
        )
        return cls(fingerprints=frozenset(fps), entries=entries, triage=triage)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline format in {path} "
                f"(expected version {BASELINE_VERSION})"
            )
        entries = tuple(data.get("entries", ()))
        count = data.get("count")
        if count is not None and count != len(entries):
            raise ValueError(
                f"baseline {path} is corrupt: count says {count} but "
                f"{len(entries)} entries present (hand-edited?)"
            )
        fps = frozenset(str(e["fingerprint"]) for e in entries)
        triage = data.get("triage")
        return cls(
            fingerprints=fps,
            entries=entries,
            triage=str(triage) if triage is not None else None,
        )

    def save(self, path: Path) -> None:
        payload: dict[str, object] = {
            "version": BASELINE_VERSION,
            "comment": (
                "Accepted pre-existing findings of `python -m repro.analysis`. "
                "Regenerate with --write-baseline after deliberate triage; "
                "never hand-edit fingerprints. The baseline is a ratchet: "
                "growing it requires --triage with a written reason."
            ),
            "count": len(self.entries),
        }
        if self.triage is not None:
            payload["triage"] = self.triage
        payload["entries"] = list(self.entries)
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )


@dataclass(frozen=True)
class RatchetReport:
    """What ``--check-ratchet`` found: the ways a baseline can go bad."""

    #: findings not covered by the baseline (debt tried to grow).
    new_violations: tuple[Violation, ...]
    #: baseline entries matching no current finding (debt was paid but
    #: the baseline was never shrunk — regenerate it).
    stale_entries: tuple[dict[str, object], ...]

    @property
    def ok(self) -> bool:
        return not self.new_violations and not self.stale_entries

    def lines(self) -> list[str]:
        """Human-readable report naming every offending entry."""
        out: list[str] = []
        for v in self.new_violations:
            out.append(f"ratchet: NEW finding not in baseline: {v.format()}")
        for entry in self.stale_entries:
            out.append(
                "ratchet: STALE baseline entry (debt already paid): "
                f"{entry.get('rule')} {entry.get('path')} "
                f"{str(entry.get('snippet', ''))!r} — regenerate the "
                "baseline so it shrinks"
            )
        if not out:
            out.append("ratchet ok: no new findings, no stale entries")
        return out


def check_ratchet(
    violations: Sequence[Violation], baseline: Baseline
) -> RatchetReport:
    """Compare the current findings against the committed baseline.

    The baseline may only shrink: any finding outside it is a failure,
    and so is any baselined fingerprint that no longer matches a real
    finding (the fix landed; commit the smaller baseline with it).
    """
    ordered = sorted(violations, key=Violation.sort_key)
    current = set(fingerprint_all(ordered))
    new = tuple(baseline.filter_new(ordered))
    stale = tuple(
        entry
        for entry in baseline.entries
        if str(entry.get("fingerprint")) not in current
    )
    return RatchetReport(new_violations=new, stale_entries=stale)


def merge(baselines: Iterable[Baseline]) -> Baseline:
    """Union of several baselines (used when scanning path groups)."""
    fps: set[str] = set()
    entries: list[dict[str, object]] = []
    for b in baselines:
        fps.update(b.fingerprints)
        entries.extend(b.entries)
    return Baseline(fingerprints=frozenset(fps), entries=tuple(entries))
