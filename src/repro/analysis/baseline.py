"""Committed-baseline handling: existing debt fails only when it grows.

A baseline entry fingerprints a violation by *what* the offending line
says, not *where* it currently sits — ``sha256(rule | path |
stripped-line-text | duplicate-index)`` — so unrelated edits that shift
line numbers do not invalidate the baseline, while editing the flagged
line itself (or adding a second identical offence) surfaces as new.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import Violation

BASELINE_VERSION = 1

#: Default committed baseline, looked up relative to the working dir.
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


def fingerprint(violation: Violation, duplicate_index: int = 0) -> str:
    """Stable identity of a violation across line-number drift."""
    payload = "|".join(
        (
            violation.rule,
            violation.path,
            violation.snippet,
            str(duplicate_index),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprint_all(violations: Sequence[Violation]) -> list[str]:
    """Fingerprints for a batch, disambiguating identical lines."""
    seen: dict[tuple[str, str, str], int] = {}
    out: list[str] = []
    for v in sorted(violations, key=Violation.sort_key):
        key = (v.rule, v.path, v.snippet)
        index = seen.get(key, 0)
        seen[key] = index + 1
        out.append(fingerprint(v, index))
    return out


@dataclass(frozen=True)
class Baseline:
    """An accepted-debt set loaded from (or destined for) JSON."""

    fingerprints: frozenset[str]
    entries: tuple[dict[str, object], ...] = ()

    def __contains__(self, fp: str) -> bool:
        return fp in self.fingerprints

    def filter_new(
        self, violations: Sequence[Violation]
    ) -> list[Violation]:
        """Violations whose fingerprint is *not* baselined, sorted."""
        ordered = sorted(violations, key=Violation.sort_key)
        fps = fingerprint_all(ordered)
        return [v for v, fp in zip(ordered, fps) if fp not in self.fingerprints]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(fingerprints=frozenset())

    @classmethod
    def from_violations(cls, violations: Sequence[Violation]) -> "Baseline":
        ordered = sorted(violations, key=Violation.sort_key)
        fps = fingerprint_all(ordered)
        entries = tuple(
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "snippet": v.snippet,
                "fingerprint": fp,
            }
            for v, fp in zip(ordered, fps)
        )
        return cls(fingerprints=frozenset(fps), entries=entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline format in {path} "
                f"(expected version {BASELINE_VERSION})"
            )
        entries = tuple(data.get("entries", ()))
        fps = frozenset(str(e["fingerprint"]) for e in entries)
        return cls(fingerprints=fps, entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "Accepted pre-existing findings of `python -m repro.analysis`. "
                "Regenerate with --write-baseline after deliberate triage; "
                "never hand-edit fingerprints."
            ),
            "entries": list(self.entries),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )


def merge(baselines: Iterable[Baseline]) -> Baseline:
    """Union of several baselines (used when scanning path groups)."""
    fps: set[str] = set()
    entries: list[dict[str, object]] = []
    for b in baselines:
        fps.update(b.fingerprints)
        entries.extend(b.entries)
    return Baseline(fingerprints=frozenset(fps), entries=tuple(entries))
