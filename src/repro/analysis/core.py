"""Rule framework for the ``repro`` static analyser.

The analyser is a thin AST pass: each :class:`Rule` walks a parsed
module (one :class:`FileContext` per file) and yields
:class:`Violation` records. Shared plumbing lives here —

* :class:`ImportTable` resolves local names to canonical dotted paths
  (``np.random.default_rng`` → ``numpy.random.default_rng``), so rules
  match *what is called*, not how the import happened to be spelled;
* :class:`SuppressionIndex` parses ``# repro: noqa[RULE1,RULE2]``
  (or a blanket ``# repro: noqa``) line comments;
* :func:`parent_map` lets rules look outward from a node (e.g. "is this
  ``np.log`` wrapped in an ``np.where`` guard?").

Rules come in two shapes. Per-file rules stay deliberately syntactic
and local: no type inference, one :class:`FileContext` at a time.
Project-wide rules (``project_wide = True``) instead receive a
:class:`~repro.analysis.graph.ProjectContext` — a whole-program model
(module import graph, per-function call graph, class attribute-access
index) built once per run — and implement :meth:`Rule.check_project`.
False positives are expected and cheap either way — that is what the
suppression comment and the committed baseline are for.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.graph import ProjectContext

#: Recognised severities, most severe first.
SEVERITIES = ("error", "warning")

#: Every rule code must match this (letters + 3 digits).
RULE_CODE_RE = re.compile(r"^[A-Z]{3}\d{3}$")

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9\s,]*)\])?", re.IGNORECASE
)
#: ``# noqa: BLE001``-style justifications also silence EXC001's
#: broad-except check (kept compatible with ruff's vocabulary).
BLANKET_NOQA_RE = re.compile(r"#\s*noqa:\s*(?P<codes>[A-Z0-9, ]+)")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and a message."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    snippet: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
        }


class SuppressionIndex:
    """Per-line ``# repro: noqa[...]`` suppressions for one file."""

    def __init__(self, source: str) -> None:
        self._all_rules: set[int] = set()
        self._by_line: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None or not rules.strip():
                self._all_rules.add(lineno)
            else:
                codes = {r.strip().upper() for r in rules.split(",") if r.strip()}
                self._by_line.setdefault(lineno, set()).update(codes)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if line in self._all_rules:
            return True
        return rule in self._by_line.get(line, set())


class ImportTable(ast.NodeVisitor):
    """Maps local aliases to canonical dotted module/attribute paths."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            self.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports: out of scope for these rules
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted path for a Name/Attribute chain, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child → parent links for every node in ``tree``."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


@dataclass
class FileContext:
    """One parsed file plus everything a rule needs to inspect it."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: SuppressionIndex = field(init=False)
    imports: ImportTable = field(init=False)
    _parents: dict[ast.AST, ast.AST] | None = field(default=None, repr=False)
    _stmt_starts: dict[int, int] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        self.suppressions = SuppressionIndex(self.source)
        self.imports = ImportTable()
        self.imports.visit(self.tree)

    @classmethod
    def parse(cls, path: Path, root: Path | None = None) -> "FileContext":
        """Parse ``path``; raises ``SyntaxError`` on unparsable source."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(path=path, relpath=relative_posix(path, root), source=source, tree=tree)

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = parent_map(self.tree)
        return self._parents

    def statement_start(self, lineno: int) -> int:
        """First line of the innermost statement covering ``lineno``.

        A ``# repro: noqa[...]`` written on the opening line of a
        multi-line call/def must silence findings reported on any of its
        continuation lines, so suppressions are checked against this
        anchor as well as the literal finding line.
        """
        if self._stmt_starts is None:
            starts: dict[int, int] = {}
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.stmt):
                    continue
                end = getattr(node, "end_lineno", None) or node.lineno
                for covered in range(node.lineno, end + 1):
                    prev = starts.get(covered)
                    # Innermost statement wins: the deepest statement
                    # covering a line starts latest.
                    if prev is None or node.lineno > prev:
                        starts[covered] = node.lineno
            self._stmt_starts = starts
        return self._stmt_starts.get(lineno, lineno)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def has_blanket_noqa(self, lineno: int, code_prefix: str = "BLE") -> bool:
        """True when the line carries a ``# noqa: BLE001``-style tag."""
        match = BLANKET_NOQA_RE.search(self.line_text(lineno))
        if match is None:
            return False
        return any(
            c.strip().startswith(code_prefix)
            for c in match.group("codes").split(",")
        )


def relative_posix(path: Path, root: Path | None = None) -> str:
    """``path`` relative to ``root`` (or cwd) as a posix string; falls
    back to the absolute posix path when outside both."""
    candidates = [root] if root is not None else []
    candidates.append(Path.cwd())
    resolved = path.resolve()
    for base in candidates:
        if base is None:
            continue
        try:
            return resolved.relative_to(Path(base).resolve()).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()


class Rule:
    """Base class: subclasses define the class attrs and :meth:`check`."""

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    severity: ClassVar[str] = "error"
    description: ClassVar[str] = ""
    #: posix path suffixes where the rule is structurally exempt (the
    #: module that *implements* the guarded behaviour).
    exempt_suffixes: ClassVar[tuple[str, ...]] = ()
    #: project-wide rules run once over the whole-program
    #: :class:`~repro.analysis.graph.ProjectContext` instead of once
    #: per file; they implement :meth:`check_project`.
    project_wide: ClassVar[bool] = False

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.code and not RULE_CODE_RE.match(cls.code):
            raise ValueError(f"malformed rule code {cls.code!r}")
        if cls.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {cls.severity!r}")

    def applies_to(self, ctx: FileContext) -> bool:
        return not any(ctx.relpath.endswith(sfx) for sfx in self.exempt_suffixes)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def check_project(self, project: "ProjectContext") -> Iterator[Violation]:
        raise NotImplementedError

    def suppressed(self, ctx: FileContext, violation: Violation) -> bool:
        """Suppression lookup at the finding line *and* its statement
        start, so a noqa on the first line of a multi-line statement
        covers continuation-line findings."""
        if ctx.suppressions.is_suppressed(violation.rule, violation.line):
            return True
        anchor = ctx.statement_start(violation.line)
        return anchor != violation.line and ctx.suppressions.is_suppressed(
            violation.rule, anchor
        )

    def run(self, ctx: FileContext) -> Iterator[Violation]:
        """:meth:`check` filtered through per-line suppressions."""
        if not self.applies_to(ctx):
            return
        for violation in self.check(ctx):
            if self.suppressed(ctx, violation):
                continue
            yield violation

    def run_project(self, project: "ProjectContext") -> Iterator[Violation]:
        """:meth:`check_project` filtered through suppressions in the
        file each finding points at."""
        for violation in self.check_project(project):
            ctx = project.context_for(violation.path)
            if ctx is not None and self.suppressed(ctx, violation):
                continue
            yield violation

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            rule=self.code,
            path=ctx.relpath,
            line=line,
            col=col + 1,
            message=message,
            severity=self.severity,
            snippet=ctx.line_text(line).strip(),
        )
