"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        status = main()
    except BrokenPipeError:  # repro: noqa[EXC001] - downstream pipe (e.g. `| head`) closed early
        # Re-point stdout at devnull so the interpreter's shutdown flush
        # does not raise a second time, then exit like a killed pipe peer.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        status = 141  # 128 + SIGPIPE, the conventional shell status
    raise SystemExit(status)
